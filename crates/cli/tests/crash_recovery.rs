//! Crash-recovery contract of `bpmax-cli scan --batch --checkpoint-dir`.
//!
//! The durable-checkpoint promise, pinned end-to-end against the real
//! binary: a SIGKILL at an arbitrary instant mid-wave loses at most the
//! problem in flight; `--resume` replays every journaled window without
//! recomputing it and produces ranked output **bit-identical** to an
//! uninterrupted run; and any corruption of the bytes on disk is
//! refused with exit 2 and a typed `corrupt checkpoint` diagnostic,
//! never replayed as garbage.
//!
//! The SIGKILL test needs the `fault-inject` feature (it slows the
//! child's solves via `BPMAX_FAULT_SLOW_MS` so the kill lands mid-wave);
//! the corruption tests run unconditionally.

use std::path::{Path, PathBuf};
use std::process::Command;

const QUERY: &str = "GGCAU";
const TARGET: &str = "AUGCCAAAAUGGCAUAAACCGGU"; // 23 windows
#[cfg(feature = "fault-inject")]
const WINDOWS: usize = 23;

fn tmpdir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed); // ordering: unique-suffix counter only; nothing is published
    let dir = std::env::temp_dir().join(format!("bpmax-crash-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scan_args(dir: Option<&Path>, resume: bool) -> Vec<String> {
    let mut args: Vec<String> = [
        "scan",
        QUERY,
        TARGET,
        "--window",
        "6",
        "--batch",
        "--threads",
        "1",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    if let Some(dir) = dir {
        args.push("--checkpoint-dir".into());
        args.push(dir.to_str().unwrap().into());
    }
    if resume {
        args.push("--resume".into());
    }
    args
}

fn run(args: &[String]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bpmax-cli"))
        .args(args)
        .env_remove("BPMAX_FAULT_SLOW_MS")
        .output()
        .expect("spawn bpmax-cli");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The ranked-results section of a scan's stdout (everything from the
/// "top N windows:" header down) — the part that must be bit-identical
/// across resumed and uninterrupted runs; the engine note above it
/// carries wall-clock timings.
#[cfg(feature = "fault-inject")]
fn ranked_tail(stdout: &str) -> Vec<String> {
    let tail: Vec<String> = stdout
        .lines()
        .skip_while(|l| !l.starts_with("top "))
        .map(String::from)
        .collect();
    assert!(!tail.is_empty(), "no ranked section in:\n{stdout}");
    tail
}

/// SIGKILL the scan mid-wave, then resume: ranked output bit-identical
/// to an uninterrupted run, and **zero** journaled windows recomputed —
/// their journal records (including the wall-clock `seconds` field,
/// which recomputation could not reproduce bit-for-bit) survive the
/// resume untouched.
#[cfg(feature = "fault-inject")]
#[test]
fn sigkill_mid_wave_then_resume_is_bit_identical() {
    use bpmax::checkpoint;
    use std::time::{Duration, Instant};

    let (code, reference, stderr) = run(&scan_args(None, false));
    assert_eq!(code, 0, "{stderr}");

    let dir = tmpdir("sigkill");
    let mut child = Command::new(env!("CARGO_BIN_EXE_bpmax-cli"))
        .args(scan_args(Some(&dir), false))
        .env("BPMAX_FAULT_SLOW_MS", "30")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn slowed bpmax-cli");

    // wait for a few windows to be journaled, then kill without warning
    // (`Child::kill` is SIGKILL on unix — no chance to clean up)
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok((_, records, _)) = checkpoint::load(&dir) {
            if records.len() >= 3 {
                break;
            }
        }
        assert!(Instant::now() < deadline, "no journal progress within 60 s");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("kill child");
    let _ = child.wait();

    // whatever the kill left behind is a valid checkpoint: atomic
    // renames mean there is no torn state to observe
    let (_, before, _) = checkpoint::load(&dir).expect("journal valid after SIGKILL");
    assert!(
        !before.is_empty() && before.len() < WINDOWS,
        "kill landed mid-wave: {} of {WINDOWS} journaled",
        before.len()
    );

    let (code, resumed, stderr) = run(&scan_args(Some(&dir), true));
    assert_eq!(code, 0, "{stderr}");
    assert!(
        resumed.contains(&format!(
            "checkpoint: {} of {WINDOWS} windows replayed",
            before.len()
        )),
        "{resumed}"
    );
    assert_eq!(
        ranked_tail(&reference),
        ranked_tail(&resumed),
        "resumed ranking differs from uninterrupted run"
    );

    // zero recomputation: every pre-kill record is still in the journal
    // bit-for-bit, and the rest were filled in exactly once
    let (_, after, _) = checkpoint::load(&dir).expect("journal valid after resume");
    assert_eq!(after.len(), WINDOWS);
    for rec in &before {
        let replayed = after
            .iter()
            .find(|r| r.index == rec.index)
            .expect("journaled record survived the resume");
        assert_eq!(replayed, rec, "window {} was recomputed", rec.index);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted journal — any single flipped byte — is refused with exit
/// 2 and a `corrupt checkpoint` diagnostic, never replayed.
#[test]
fn flipped_journal_byte_is_refused() {
    let dir = tmpdir("flip");
    let (code, _, stderr) = run(&scan_args(Some(&dir), false));
    assert_eq!(code, 0, "{stderr}");

    let jpath = dir.join("journal.bin");
    let pristine = std::fs::read(&jpath).expect("journal written");
    // flip one byte in the header, one mid-file, one in the tail record
    for at in [4, pristine.len() / 2, pristine.len() - 3] {
        let mut bad = pristine.clone();
        bad[at] ^= 0x40;
        std::fs::write(&jpath, &bad).unwrap();
        let (code, stdout, stderr) = run(&scan_args(Some(&dir), true));
        assert_eq!(code, 2, "flip at {at}: {stderr}");
        assert!(
            stderr.contains("corrupt checkpoint"),
            "flip at {at}: {stderr}"
        );
        assert!(!stdout.contains("top "), "flip at {at}: replayed anyway");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A truncated journal — a partial write that atomic renames make
/// impossible in normal operation, so it can only be real damage — is
/// likewise refused with exit 2.
#[test]
fn truncated_journal_is_refused() {
    let dir = tmpdir("trunc");
    let (code, _, stderr) = run(&scan_args(Some(&dir), false));
    assert_eq!(code, 0, "{stderr}");

    let jpath = dir.join("journal.bin");
    let pristine = std::fs::read(&jpath).expect("journal written");
    for len in [0, 7, pristine.len() / 2, pristine.len() - 1] {
        std::fs::write(&jpath, &pristine[..len]).unwrap();
        let (code, _, stderr) = run(&scan_args(Some(&dir), true));
        assert_eq!(code, 2, "truncate to {len}: {stderr}");
        assert!(
            stderr.contains("corrupt checkpoint"),
            "truncate to {len}: {stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming from a directory that holds no checkpoint is an I/O error
/// (exit 2), clearly distinguished from corruption.
#[test]
fn resume_without_a_checkpoint_is_an_io_error() {
    let dir = tmpdir("missing");
    let (code, _, stderr) = run(&scan_args(Some(&dir), true));
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("checkpoint i/o error"), "{stderr}");
}

/// A checkpoint written under different scoring options is refused as a
/// configuration mismatch, not silently mixed.
#[test]
fn resume_with_different_problems_is_a_mismatch() {
    let dir = tmpdir("mismatch");
    let (code, _, stderr) = run(&scan_args(Some(&dir), false));
    assert_eq!(code, 0, "{stderr}");
    // same flags, different target ⇒ different problem set
    let mut args = scan_args(Some(&dir), true);
    args[2] = "AUGCCAAAAUGGCAUAAACCGGA".into();
    let (code, _, stderr) = run(&args);
    assert_eq!(code, 2, "{stderr}");
    assert!(
        stderr.contains("checkpoint configuration mismatch"),
        "{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
