//! Property tests for the polyhedral substrate.

use polyhedral::affine::{env, v, AffineExpr, AffineMap, Env};
use polyhedral::domain::Domain;
use polyhedral::schedule::{lex_cmp, Schedule};
use polyhedral::tiling::{strip_mine, tile_count, tile_ranges};
use proptest::prelude::*;
use std::cmp::Ordering;

fn small_expr() -> impl Strategy<Value = AffineExpr> {
    // c0 + c1·x + c2·y with small coefficients
    (-5i64..=5, -5i64..=5, -5i64..=5)
        .prop_map(|(c0, c1, c2)| AffineExpr::constant(c0) + v("x") * c1 + v("y") * c2)
}

fn point() -> impl Strategy<Value = (i64, i64)> {
    (-20i64..=20, -20i64..=20)
}

fn eval(e: &AffineExpr, (x, y): (i64, i64)) -> i64 {
    e.eval(&env(&[("x", x), ("y", y)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn affine_addition_is_pointwise(a in small_expr(), b in small_expr(), p in point()) {
        let sum = a.clone() + b.clone();
        prop_assert_eq!(eval(&sum, p), eval(&a, p) + eval(&b, p));
        let diff = a.clone() - b.clone();
        prop_assert_eq!(eval(&diff, p), eval(&a, p) - eval(&b, p));
        let neg = -a.clone();
        prop_assert_eq!(eval(&neg, p), -eval(&a, p));
    }

    #[test]
    fn affine_scaling_is_pointwise(a in small_expr(), k in -4i64..=4, p in point()) {
        let scaled = a.clone() * k;
        prop_assert_eq!(eval(&scaled, p), k * eval(&a, p));
    }

    #[test]
    fn substitution_commutes_with_evaluation(
        a in small_expr(),
        inner1 in small_expr(),
        inner2 in small_expr(),
        p in point(),
    ) {
        // a[x := inner1, y := inner2] evaluated at p equals a evaluated at
        // (inner1(p), inner2(p)).
        let mut subs = std::collections::BTreeMap::new();
        subs.insert("x".to_string(), inner1.clone());
        subs.insert("y".to_string(), inner2.clone());
        let substituted = a.substitute(&subs);
        let direct = {
            let e: Env = env(&[("x", eval(&inner1, p)), ("y", eval(&inner2, p))]);
            a.eval(&e)
        };
        prop_assert_eq!(eval(&substituted, p), direct);
    }

    #[test]
    fn map_composition_is_function_composition(
        e1 in small_expr(), e2 in small_expr(), e3 in small_expr(), p in point(),
    ) {
        let inner = AffineMap::new(&["x", "y"], vec![e1, e2]);
        let outer = AffineMap::new(&["x", "y"], vec![e3]);
        let composed = outer.compose(&inner);
        let params = env(&[]);
        let inner_out = inner.eval_point(&[p.0, p.1], &params);
        let expect = outer.eval_point(&inner_out, &params);
        prop_assert_eq!(composed.eval_point(&[p.0, p.1], &params), expect);
    }

    #[test]
    fn domain_enumeration_matches_membership(bound in 1i64..8) {
        let d = Domain::universe(&["x", "y"])
            .ge0(v("x"))
            .ge0(v("y") - v("x"))
            .lt(v("y"), v("N"));
        let params = env(&[("N", bound)]);
        let box_ = vec![(-2i64, bound + 2); 2];
        let pts = d.enumerate(&box_, &params);
        // every enumerated point is a member; every member is enumerated
        let mut count = 0;
        for x in -2..bound + 2 {
            for y in -2..bound + 2 {
                if d.contains(&[x, y], &params) {
                    count += 1;
                    prop_assert!(pts.contains(&vec![x, y]));
                }
            }
        }
        prop_assert_eq!(pts.len(), count);
        prop_assert_eq!(count as i64, bound * (bound + 1) / 2);
    }

    #[test]
    fn lex_cmp_is_a_total_order(
        a in proptest::collection::vec(-10i64..10, 3),
        b in proptest::collection::vec(-10i64..10, 3),
        c in proptest::collection::vec(-10i64..10, 3),
    ) {
        // antisymmetry
        match lex_cmp(&a, &b) {
            Ordering::Less => prop_assert_eq!(lex_cmp(&b, &a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(lex_cmp(&b, &a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(&a, &b),
        }
        // transitivity (check one direction)
        if lex_cmp(&a, &b) != Ordering::Greater && lex_cmp(&b, &c) != Ordering::Greater {
            prop_assert_ne!(lex_cmp(&a, &c), Ordering::Greater);
        }
    }

    #[test]
    fn strip_mine_preserves_relative_order_per_band_point(
        size in 1i64..9,
        i in 0i64..64,
        j in 0i64..64,
    ) {
        // Tiling dims [0] of a 1-D schedule: order between two points is
        // preserved (tiling a single ascending dimension is always legal).
        let s = Schedule::affine(&["i"], vec![v("i")]);
        let t = strip_mine(&s, &[0], &[size]);
        let params = env(&[]);
        let (ta, tb) = (t.time(&[i], &params), t.time(&[j], &params));
        match i.cmp(&j) {
            Ordering::Less => prop_assert_eq!(lex_cmp(&ta, &tb), Ordering::Less),
            Ordering::Greater => prop_assert_eq!(lex_cmp(&ta, &tb), Ordering::Greater),
            Ordering::Equal => prop_assert_eq!(ta, tb),
        }
    }

    #[test]
    fn tile_ranges_partition(lo in 0usize..50, len in 0usize..60, size in 1usize..17) {
        let hi = lo + len;
        let ranges: Vec<_> = tile_ranges(lo, hi, size).collect();
        prop_assert_eq!(ranges.len(), tile_count(lo, hi, size));
        // contiguity + coverage
        let mut cursor = lo;
        for (a, b) in ranges {
            prop_assert_eq!(a, cursor);
            prop_assert!(b > a && b - a <= size);
            cursor = b;
        }
        prop_assert_eq!(cursor.max(lo), hi.max(lo));
    }

    #[test]
    fn schedule_times_are_parameter_stable(
        p in point(),
        m in 1i64..50,
    ) {
        // A schedule without parameters gives the same time regardless of
        // the parameter environment.
        let s = Schedule::affine(&["x", "y"], vec![v("y") - v("x"), v("x")]);
        let t1 = s.time(&[p.0, p.1], &env(&[]));
        let t2 = s.time(&[p.0, p.1], &env(&[("M", m)]));
        prop_assert_eq!(t1, t2);
    }
}
