//! Edge cases of `SchedDim::Tiled` (`⌊e/s⌋` time coordinates) checked on
//! *both* legality checkers — the exhaustive enumerator and the symbolic
//! analyzer must agree on: tile size 1 (the identity tiling), tile size
//! larger than the whole domain extent (one tile holds everything), and
//! domains reaching into negative coordinates (where `⌊·/s⌋` must be a
//! floor division, not truncation).

use polyhedral::affine::{c, env, v, AffineMap};
use polyhedral::schedule::SchedDim;
use polyhedral::tiling::strip_mine;
use polyhedral::{Dependence, Domain, Schedule, System, Var};

/// X[i] ← X[i−1] over the given domain.
fn chain(domain: Domain) -> System {
    let mut sys = System::new(&["N"]);
    sys.add_var(Var::new("X", domain));
    sys.add_dep(
        Dependence::new(
            "chain",
            "X",
            "X",
            AffineMap::new(&["i"], vec![v("i") - c(1)]),
        )
        .with_guard(Domain::universe(&["i"]).ge0(v("i") - c(1))),
    );
    sys
}

fn nonneg_domain() -> Domain {
    Domain::universe(&["i"]).ge0(v("i")).lt(v("i"), v("N"))
}

/// −N ≤ i < N: the negative-bounds variant (guarded to i ≥ 1 by the dep,
/// the *domain* still spans negatives so enumeration and floor-division
/// both have to cope).
fn signed_domain() -> Domain {
    Domain::universe(&["i"])
        .ge0(v("i") + v("N"))
        .lt(v("i"), v("N"))
}

/// A signed chain whose guard permits negative consumers too: X[i] reads
/// X[i−1] everywhere above the domain floor.
fn signed_chain() -> System {
    let mut sys = System::new(&["N"]);
    sys.add_var(Var::new("X", signed_domain()));
    sys.add_dep(
        Dependence::new(
            "chain",
            "X",
            "X",
            AffineMap::new(&["i"], vec![v("i") - c(1)]),
        )
        .with_guard(Domain::universe(&["i"]).ge0(v("i") + v("N") - c(1))),
    );
    sys
}

#[test]
fn tile_size_one_is_the_identity_tiling() {
    let mut sys = chain(nonneg_domain());
    sys.set_schedule(
        "X",
        strip_mine(&Schedule::affine(&["i"], vec![v("i")]), &[0], &[1]),
    );
    assert!(sys.verify(&env(&[("N", 8)]), 8, 10).is_empty());
    let report = sys.verify_static();
    assert!(report.is_legal(), "{report}");
}

#[test]
fn tile_size_one_still_catches_reversal() {
    let mut sys = chain(nonneg_domain());
    sys.set_schedule(
        "X",
        strip_mine(&Schedule::affine(&["i"], vec![c(0) - v("i")]), &[0], &[1]),
    );
    assert!(!sys.verify(&env(&[("N", 8)]), 8, 10).is_empty());
    let report = sys.verify_static();
    assert!(!report.is_legal());
    assert!(report.violations().next().is_some(), "needs a witness");
}

#[test]
fn tile_larger_than_domain_extent_is_one_big_tile() {
    let mut sys = chain(nonneg_domain());
    sys.set_schedule(
        "X",
        strip_mine(&Schedule::affine(&["i"], vec![v("i")]), &[0], &[64]),
    );
    // Exhaustively at N = 5 (extent 5 « tile 64) ...
    assert!(sys.verify(&env(&[("N", 5)]), 5, 10).is_empty());
    // ... and symbolically for all N, including N > 64.
    let report = sys.verify_static();
    assert!(report.is_legal(), "{report}");
}

#[test]
fn negative_bounds_tiled_chain_is_legal_on_both_checkers() {
    let mut sys = signed_chain();
    sys.set_schedule(
        "X",
        strip_mine(&Schedule::affine(&["i"], vec![v("i")]), &[0], &[2]),
    );
    // Exhaustive needs the explicit box: [−8, 8) covers −N ≤ i < N at N=8.
    assert!(sys.verify_boxed(&env(&[("N", 8)]), -8, 8, 10).is_empty());
    let report = sys.verify_static();
    assert!(report.is_legal(), "{report}");
}

#[test]
fn negative_bounds_reversed_tiled_chain_is_caught_by_both() {
    let mut sys = signed_chain();
    sys.set_schedule(
        "X",
        Schedule::new(
            &["i"],
            vec![
                SchedDim::Tiled {
                    expr: c(0) - v("i"),
                    size: 2,
                },
                SchedDim::Affine(v("i")),
            ],
        ),
    );
    let report = sys.verify_static();
    assert!(!report.is_legal());
    let w = report.violations().next().expect("a witness");
    // Replay at the witness's parameters with a box covering its points.
    let span = w
        .consumer_point
        .iter()
        .chain(&w.producer_point)
        .map(|&x| x.abs())
        .max()
        .unwrap()
        .max(w.params["N"])
        + 1;
    let found = sys.verify_boxed(&w.params, -span, span, 10);
    assert!(
        !found.is_empty(),
        "exhaustive must confirm at N={}",
        w.params["N"]
    );
}

#[test]
fn floor_division_not_truncation_at_negative_indices() {
    // ⌊i/2⌋ at i = −1 must be −1 (floor), not 0 (truncation): with a
    // truncating division the pair (−1 → −2) would look misordered
    // (tile(−2) = −1 = tile(−1) is fine, but tile(−3) = −2 < tile(−2) = −1
    // keeps order). A legal verdict on the signed tiled chain is exactly
    // the statement that the engine divides with floor semantics.
    let mut sys = signed_chain();
    sys.set_schedule(
        "X",
        Schedule::new(
            &["i"],
            vec![
                SchedDim::Tiled {
                    expr: v("i"),
                    size: 2,
                },
                SchedDim::Affine(v("i")),
            ],
        ),
    );
    assert!(sys.verify_boxed(&env(&[("N", 6)]), -6, 6, 10).is_empty());
    assert!(sys.verify_static().is_legal());
}
