//! Exact emptiness testing for integer polyhedra over named variables.
//!
//! A [`Polyhedron`] is a conjunction of affine constraints `e ≥ 0` /
//! `e = 0` with `i128` coefficients over symbolic variables (iteration
//! indices, tile coordinates, size parameters — no distinction is made
//! here). [`Polyhedron::feasibility`] decides whether the set contains an
//! integer point:
//!
//! 1. **Normalization & integer tightening.** Every constraint is divided
//!    by the gcd of its variable coefficients; for inequalities the
//!    constant is floored (a sound Gomory-style strengthening that
//!    preserves exactly the integer points), and an equality whose gcd
//!    does not divide its constant is immediately unsatisfiable over ℤ.
//! 2. **Equality substitution.** Equalities with a ±1 coefficient are
//!    eliminated by Gaussian substitution, shrinking the variable set
//!    without any rational relaxation.
//! 3. **Fourier–Motzkin elimination.** Remaining variables are eliminated
//!    greedily (fewest pairwise combinations first) by exact rational FM
//!    over integer coefficients (`a·x + f ≥ 0`, `-b·x + g ≥ 0` combine to
//!    `b·f + a·g ≥ 0`), with gcd re-tightening and constraint
//!    deduplication at every step. A contradictory constant certifies
//!    emptiness: the tightened system preserves integer points, so
//!    **Empty means no integer point exists** — that is the soundness
//!    direction a "schedule is legal" verdict rests on.
//! 4. **Integer witness refinement.** If FM finds the rational relaxation
//!    non-empty, a bounded backtracking search over the FM cascade
//!    (assigning variables in reverse elimination order, candidates taken
//!    from each variable's implied interval) looks for a concrete integer
//!    point. Every returned witness is re-checked against the original
//!    constraints. If the budget runs out, the verdict is the honest
//!    [`Feasibility::RationalOnly`].

use crate::affine::AffineExpr;
use std::collections::{BTreeMap, BTreeSet};

/// A concrete integer valuation of the polyhedron's variables.
pub type Assignment = BTreeMap<String, i64>;

/// Outcome of an integer-feasibility query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// Certified: the set contains no integer point.
    Empty,
    /// A concrete integer point in the set (verified against every
    /// original constraint).
    Witness(Assignment),
    /// The rational relaxation is (or may be) non-empty but no integer
    /// point was found within the search budget. Callers must treat this
    /// as "unknown", never as "legal".
    RationalOnly,
}

/// A linear expression `Σ cᵢ·xᵢ + k` with `i128` coefficients.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct LinExpr {
    coeffs: BTreeMap<String, i128>,
    constant: i128,
}

impl LinExpr {
    /// The constant expression `k`.
    #[must_use]
    pub fn constant(k: i128) -> Self {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: k,
        }
    }

    /// The single variable `name`.
    #[must_use]
    pub fn var(name: &str) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.to_string(), 1);
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Coefficient of `name` (0 when absent).
    #[must_use]
    pub fn coeff(&self, name: &str) -> i128 {
        self.coeffs.get(name).copied().unwrap_or(0)
    }

    /// The constant term.
    #[must_use]
    pub fn constant_term(&self) -> i128 {
        self.constant
    }

    /// Variables with non-zero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.coeffs
            .iter()
            .filter(|(_, &c)| c != 0)
            .map(|(v, _)| v.as_str())
    }

    /// True when no variable has a non-zero coefficient.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.coeffs.values().all(|&c| c == 0)
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (v, c) in &other.coeffs {
            *out.coeffs.entry(v.clone()).or_insert(0) += c;
        }
        out.constant += other.constant;
        out.prune();
        out
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1))
    }

    /// `self * k`.
    #[must_use]
    pub fn scale(&self, k: i128) -> LinExpr {
        let mut out = self.clone();
        for c in out.coeffs.values_mut() {
            *c *= k;
        }
        out.constant *= k;
        out.prune();
        out
    }

    /// Evaluate under a (total, for this expression) assignment.
    ///
    /// # Panics
    /// Panics if a variable with non-zero coefficient is unassigned.
    #[must_use]
    pub fn eval(&self, env: &Assignment) -> i128 {
        let mut acc = self.constant;
        for (v, &c) in &self.coeffs {
            if c != 0 {
                let val = *env
                    .get(v)
                    .unwrap_or_else(|| panic!("unbound variable `{v}` in LinExpr::eval")); // lint: allow(panic): unbound variable is a caller bug
                acc += c * i128::from(val);
            }
        }
        acc
    }

    /// Replace `name` by `expr` (used by equality substitution).
    fn substitute(&self, name: &str, expr: &LinExpr) -> LinExpr {
        let c = self.coeff(name);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(name);
        out.add(&expr.scale(c))
    }

    fn prune(&mut self) {
        self.coeffs.retain(|_, c| *c != 0);
    }

    fn gcd_of_coeffs(&self) -> i128 {
        self.coeffs
            .values()
            .filter(|&&c| c != 0)
            .fold(0i128, |g, &c| gcd(g, c.abs()))
    }
}

impl From<&AffineExpr> for LinExpr {
    fn from(e: &AffineExpr) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        for v in e.vars() {
            let c = e.coeff(v);
            if c != 0 {
                coeffs.insert(v.to_string(), i128::from(c));
            }
        }
        LinExpr {
            coeffs,
            constant: i128::from(e.constant_term()),
        }
    }
}

impl std::fmt::Display for LinExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (v, &c) in &self.coeffs {
            if c == 0 {
                continue;
            }
            if first {
                if c == 1 {
                    write!(f, "{v}")?;
                } else if c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}{v}")?;
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Resource limits for [`Polyhedron::feasibility`].
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Abort FM (→ at best `RationalOnly`) past this many live constraints.
    pub max_constraints: usize,
    /// Total nodes explored in the integer witness search.
    pub max_search_nodes: usize,
    /// Integer candidates tried per variable per search node.
    pub candidates_per_var: usize,
    /// Absolute value cap on candidate witness coordinates.
    pub value_cap: i128,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_constraints: 20_000,
            max_search_nodes: 50_000,
            candidates_per_var: 12,
            value_cap: 1 << 40,
        }
    }
}

/// A conjunction of `e ≥ 0` / `e = 0` constraints over named integer
/// variables.
#[derive(Clone, Debug, Default)]
pub struct Polyhedron {
    ges: Vec<LinExpr>,
    eqs: Vec<LinExpr>,
}

impl Polyhedron {
    /// The empty conjunction (the whole space).
    #[must_use]
    pub fn new() -> Self {
        Polyhedron::default()
    }

    /// Add the constraint `e ≥ 0`.
    pub fn add_ge0(&mut self, e: LinExpr) {
        self.ges.push(e);
    }

    /// Add the constraint `e = 0`.
    pub fn add_eq0(&mut self, e: LinExpr) {
        self.eqs.push(e);
    }

    /// All constraints as `(expr, is_equality)` pairs.
    pub fn constraints(&self) -> impl Iterator<Item = (&LinExpr, bool)> {
        self.ges
            .iter()
            .map(|e| (e, false))
            .chain(self.eqs.iter().map(|e| (e, true)))
    }

    /// All variables mentioned by any constraint.
    #[must_use]
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (e, _) in self.constraints() {
            out.extend(e.vars().map(str::to_string));
        }
        out
    }

    /// Does `env` satisfy every constraint? (`env` must bind every
    /// mentioned variable.)
    #[must_use]
    pub fn satisfied_by(&self, env: &Assignment) -> bool {
        self.ges.iter().all(|e| e.eval(env) >= 0) && self.eqs.iter().all(|e| e.eval(env) == 0)
    }

    /// Decide integer feasibility. See the module docs for the pipeline.
    #[must_use]
    pub fn feasibility(&self, budget: &Budget) -> Feasibility {
        Solver::new(self, budget).run()
    }
}

/// Floor division for `i128`.
fn div_floor(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

/// Ceiling division for `i128`.
fn div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    -(-a).div_euclid(b)
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// One FM elimination level: the variable removed and the constraint
/// system *before* removing it (used for witness back-substitution).
struct Level {
    var: String,
    system: Vec<LinExpr>,
}

struct Solver<'a> {
    original: &'a Polyhedron,
    budget: &'a Budget,
    /// Substitutions `var := expr` from the equality pre-pass, in the
    /// order they were applied.
    subs: Vec<(String, LinExpr)>,
}

impl<'a> Solver<'a> {
    fn new(original: &'a Polyhedron, budget: &'a Budget) -> Self {
        Solver {
            original,
            budget,
            subs: Vec::new(),
        }
    }

    fn run(&mut self) -> Feasibility {
        let mut ges = self.original.ges.clone();
        let mut eqs = self.original.eqs.clone();

        // -- Equality pre-pass: normalize, check ℤ-divisibility, then
        //    substitute away every equality with a unit coefficient.
        loop {
            let mut progress = false;
            let mut next_eqs = Vec::new();
            for eq in eqs.drain(..) {
                match normalize_eq(eq) {
                    NormEq::Infeasible => return Feasibility::Empty,
                    NormEq::Trivial => {}
                    NormEq::Keep(e) => next_eqs.push(e),
                }
            }
            // Find an equality with a ±1 coefficient to substitute.
            if let Some(pos) = next_eqs
                .iter()
                .position(|e| e.coeffs.values().any(|&c| c == 1 || c == -1))
            {
                let eq = next_eqs.swap_remove(pos);
                let (var, coeff) = eq
                    .coeffs
                    .iter()
                    .find(|(_, &c)| c == 1 || c == -1)
                    .map(|(v, &c)| (v.clone(), c))
                    .expect("unit coefficient just found"); // lint: allow(expect): the find above just located this coefficient
                                                            // coeff * var + rest = 0  ⟹  var = -rest / coeff.
                let mut rest = eq.clone();
                rest.coeffs.remove(&var);
                let replacement = rest.scale(-coeff); // 1/coeff == coeff for ±1
                for e in next_eqs.iter_mut().chain(ges.iter_mut()) {
                    *e = e.substitute(&var, &replacement);
                }
                self.subs.push((var, replacement));
                progress = true;
            }
            eqs = next_eqs;
            if !progress {
                break;
            }
        }
        // Remaining (non-unit) equalities become inequality pairs.
        for eq in eqs {
            ges.push(eq.clone());
            ges.push(eq.scale(-1));
        }

        // -- Fourier–Motzkin cascade.
        let mut system = match tighten_all(ges) {
            Ok(sys) => sys,
            Err(Contradiction) => return Feasibility::Empty,
        };
        let mut levels: Vec<Level> = Vec::new();
        let mut overflowed = false;
        loop {
            let mut vars: BTreeSet<&str> = BTreeSet::new();
            for e in &system {
                vars.extend(e.vars());
            }
            if vars.is_empty() {
                break;
            }
            // Greedy: eliminate the variable generating the fewest
            // combinations (#lower-bounds × #upper-bounds).
            let var = vars
                .iter()
                .min_by_key(|v| {
                    let pos = system.iter().filter(|e| e.coeff(v) > 0).count();
                    let neg = system.iter().filter(|e| e.coeff(v) < 0).count();
                    (pos * neg, pos + neg)
                })
                .expect("non-empty var set") // lint: allow(expect): loop guard ensures vars remain
                .to_string();

            let mut rest = Vec::new();
            let mut lowers = Vec::new(); // a·x + f ≥ 0, a > 0
            let mut uppers = Vec::new(); // -b·x + g ≥ 0, b > 0
            for e in &system {
                let c = e.coeff(&var);
                if c > 0 {
                    lowers.push(e.clone());
                } else if c < 0 {
                    uppers.push(e.clone());
                } else {
                    rest.push(e.clone());
                }
            }
            for lo in &lowers {
                let a = lo.coeff(&var);
                for up in &uppers {
                    let b = -up.coeff(&var);
                    // b·(a·x + f) + a·(−b·x + g) = b·f + a·g ≥ 0.
                    rest.push(lo.scale(b).add(&up.scale(a)));
                }
            }
            levels.push(Level {
                var,
                system: system.clone(),
            });
            system = match tighten_all(rest) {
                Ok(sys) => sys,
                Err(Contradiction) => return Feasibility::Empty,
            };
            if system.len() > self.budget.max_constraints {
                // Give up on certifying emptiness; a witness may still be
                // findable from the levels built so far plus the raw set.
                overflowed = true;
                break;
            }
        }

        // -- Rationally (post-tightening) feasible: search for an integer
        //    witness by back-substitution through the cascade.
        let mut nodes = 0usize;
        let mut assignment = Assignment::new();
        let mut found = None;
        if self.search(
            &levels,
            levels.len(),
            &mut assignment,
            &mut nodes,
            &mut found,
        ) {
            if let Some(full) = found {
                return Feasibility::Witness(full);
            }
        }
        // No integer point found. If FM ran to completion the relaxation
        // is non-empty but the search failed; either way this is
        // "unknown", and `overflowed` only makes it more so.
        let _ = overflowed;
        Feasibility::RationalOnly
    }

    /// Assign variables `levels[..depth]` in reverse elimination order.
    /// `assignment` holds values for variables of deeper levels.
    fn search(
        &self,
        levels: &[Level],
        depth: usize,
        assignment: &mut Assignment,
        nodes: &mut usize,
        found: &mut Option<Assignment>,
    ) -> bool {
        if depth == 0 {
            // Leaf: completing the assignment (equality back-substitution
            // plus recovery of cascade-cancelled variables) can still fail
            // for this particular choice of values — treat that as a dead
            // end and keep backtracking rather than giving up.
            if let Some(full) = self.complete_assignment(assignment) {
                if self.original.satisfied_by(&full) {
                    *found = Some(full);
                    return true;
                }
            }
            return false;
        }
        *nodes += 1;
        if *nodes > self.budget.max_search_nodes {
            return false;
        }
        let level = &levels[depth - 1];
        // A variable can cancel out of the cascade entirely (e.g. a tile
        // quotient whose two defining constraints combine to a tautology)
        // and then never receive a level of its own; constraints that
        // mention such a still-unbound variable cannot bound this one, so
        // use only the fully-bound constraints. The final check against
        // the original system keeps this sound.
        let usable: Vec<LinExpr> = level
            .system
            .iter()
            .filter(|e| {
                e.vars()
                    .all(|u| u == level.var || assignment.contains_key(u))
            })
            .cloned()
            .collect();
        let Some((lo, hi)) = interval_for(&usable, &level.var, assignment) else {
            return false;
        };
        for value in candidates(lo, hi, self.budget) {
            assignment.insert(level.var.clone(), value);
            if self.search(levels, depth - 1, assignment, nodes, found) {
                return true;
            }
        }
        assignment.remove(&level.var);
        false
    }

    /// Extend a witness over the FM variables with the equality-substituted
    /// variables (in reverse substitution order) and default any variable
    /// the constraints never mention to 0.
    fn complete_assignment(&self, assignment: &Assignment) -> Option<Assignment> {
        let mut full = assignment.clone();
        for (var, expr) in self.subs.iter().rev() {
            // A variable of the substitution body may have dropped out of
            // every FM constraint (fully cancelled): it is unconstrained
            // there, so 0 is as good a value as any.
            for v in expr.vars() {
                if !full.contains_key(v) {
                    full.insert(v.to_string(), 0);
                }
            }
            let value = expr.eval(&full);
            full.insert(var.clone(), i64::try_from(value).ok()?);
        }
        // Variables that cancelled out of the FM cascade are still
        // constrained in the original system (a tile quotient `q` with
        // `0 ≤ e − s·q < s` is *determined* by `e`); recover each from the
        // original constraints once its co-variables are bound.
        let mut all_ges: Vec<LinExpr> = self.original.ges.clone();
        for eq in &self.original.eqs {
            all_ges.push(eq.clone());
            all_ges.push(eq.scale(-1));
        }
        let mut pending: Vec<String> = self
            .original
            .vars()
            .into_iter()
            .filter(|v| !full.contains_key(v))
            .collect();
        loop {
            let mut progress = false;
            let mut still_pending = Vec::new();
            for var in pending {
                let relevant: Vec<LinExpr> = all_ges
                    .iter()
                    .filter(|e| e.coeff(&var) != 0)
                    .cloned()
                    .collect();
                let ready = relevant
                    .iter()
                    .all(|e| e.vars().all(|u| u == var || full.contains_key(u)));
                if !ready {
                    still_pending.push(var);
                    continue;
                }
                let (lo, hi) = interval_for(&relevant, &var, &full)?;
                let value = lo.or(hi).unwrap_or(0);
                full.insert(var, i64::try_from(value).ok()?);
                progress = true;
            }
            pending = still_pending;
            if pending.is_empty() || !progress {
                break;
            }
        }
        // Anything left is circularly entangled with other unbound vars;
        // default to 0 and let the final original-system check decide.
        for var in self.original.vars() {
            full.entry(var).or_insert(0);
        }
        Some(full)
    }
}

/// Bounds on `var` implied by `system` once every *other* variable in it
/// is bound by `assignment`. `None` = rationally empty at this node.
fn interval_for(
    system: &[LinExpr],
    var: &str,
    assignment: &Assignment,
) -> Option<(Option<i128>, Option<i128>)> {
    let mut lo: Option<i128> = None;
    let mut hi: Option<i128> = None;
    for e in system {
        let a = e.coeff(var);
        let mut rest = e.clone();
        rest.coeffs.remove(var);
        let r = rest.eval(assignment);
        if a == 0 {
            if r < 0 {
                return None;
            }
        } else if a > 0 {
            // a·x + r ≥ 0 ⟹ x ≥ ⌈-r/a⌉.
            let bound = div_ceil(-r, a);
            lo = Some(lo.map_or(bound, |cur| cur.max(bound)));
        } else {
            // a·x + r ≥ 0, a < 0 ⟹ x ≤ ⌊r/(-a)⌋.
            let bound = div_floor(r, -a);
            hi = Some(hi.map_or(bound, |cur| cur.min(bound)));
        }
    }
    if let (Some(l), Some(h)) = (lo, hi) {
        if l > h {
            return None;
        }
    }
    Some((lo, hi))
}

/// Small-magnitude-first integer candidates from an interval, capped by
/// the budget. Witness coordinates beyond `value_cap` are not attempted.
fn candidates(lo: Option<i128>, hi: Option<i128>, budget: &Budget) -> Vec<i64> {
    let cap = budget.candidates_per_var;
    let mut out = Vec::with_capacity(cap);
    let clamp = |v: i128| i64::try_from(v.clamp(-budget.value_cap, budget.value_cap)).ok();
    match (lo, hi) {
        (Some(l), Some(h)) => {
            let mut v = l;
            while v <= h && out.len() < cap {
                if let Some(x) = clamp(v) {
                    out.push(x);
                }
                v += 1;
            }
        }
        (Some(l), None) => {
            let start = l.max(-budget.value_cap);
            for k in 0..cap as i128 {
                if let Some(x) = clamp(start + k) {
                    out.push(x);
                }
            }
        }
        (None, Some(h)) => {
            let start = h.min(budget.value_cap);
            for k in 0..cap as i128 {
                if let Some(x) = clamp(start - k) {
                    out.push(x);
                }
            }
        }
        (None, None) => {
            // Unconstrained at this node: small values first.
            out.push(0);
            let mut k = 1i64;
            while out.len() < cap {
                out.push(k);
                if out.len() < cap {
                    out.push(-k);
                }
                k += 1;
            }
        }
    }
    out
}

struct Contradiction;

enum NormEq {
    Infeasible,
    Trivial,
    Keep(LinExpr),
}

/// Normalize an equality: strip gcd, and detect ℤ-infeasibility when the
/// gcd of the variable coefficients does not divide the constant.
fn normalize_eq(mut e: LinExpr) -> NormEq {
    e.prune();
    let g = e.gcd_of_coeffs();
    if g == 0 {
        return if e.constant == 0 {
            NormEq::Trivial
        } else {
            NormEq::Infeasible
        };
    }
    if e.constant % g != 0 {
        return NormEq::Infeasible;
    }
    if g > 1 {
        for c in e.coeffs.values_mut() {
            *c /= g;
        }
        e.constant /= g;
    }
    NormEq::Keep(e)
}

/// Normalize and integer-tighten `e ≥ 0`: divide by the coefficient gcd
/// and floor the constant (preserves the integer solution set exactly).
/// Returns `None` for trivially true constraints.
fn tighten_ge(mut e: LinExpr) -> Result<Option<LinExpr>, Contradiction> {
    e.prune();
    let g = e.gcd_of_coeffs();
    if g == 0 {
        return if e.constant >= 0 {
            Ok(None)
        } else {
            Err(Contradiction)
        };
    }
    if g > 1 {
        for c in e.coeffs.values_mut() {
            *c /= g;
        }
        e.constant = div_floor(e.constant, g);
    }
    Ok(Some(e))
}

/// Tighten a whole system, dropping trivial and dominated duplicates
/// (same coefficients ⟹ keep only the tightest constant).
fn tighten_all(ges: Vec<LinExpr>) -> Result<Vec<LinExpr>, Contradiction> {
    let mut best: BTreeMap<BTreeMap<String, i128>, i128> = BTreeMap::new();
    for e in ges {
        if let Some(t) = tighten_ge(e)? {
            // `Σc·x + k ≥ 0` is tighter for *smaller* k.
            match best.get_mut(&t.coeffs) {
                Some(k) => *k = (*k).min(t.constant),
                None => {
                    best.insert(t.coeffs, t.constant);
                }
            }
        }
    }
    Ok(best
        .into_iter()
        .map(|(coeffs, constant)| LinExpr { coeffs, constant })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ge(p: &mut Polyhedron, coeffs: &[(&str, i128)], k: i128) {
        let mut e = LinExpr::constant(k);
        for (v, c) in coeffs {
            e = e.add(&LinExpr::var(v).scale(*c));
        }
        p.add_ge0(e);
    }

    fn eq(p: &mut Polyhedron, coeffs: &[(&str, i128)], k: i128) {
        let mut e = LinExpr::constant(k);
        for (v, c) in coeffs {
            e = e.add(&LinExpr::var(v).scale(*c));
        }
        p.add_eq0(e);
    }

    #[test]
    fn unconstrained_space_has_a_witness() {
        let p = Polyhedron::new();
        assert!(matches!(
            p.feasibility(&Budget::default()),
            Feasibility::Witness(_)
        ));
    }

    #[test]
    fn simple_box_witness() {
        let mut p = Polyhedron::new();
        ge(&mut p, &[("x", 1)], -3); // x ≥ 3
        ge(&mut p, &[("x", -1)], 10); // x ≤ 10
        ge(&mut p, &[("y", 1), ("x", -1)], 0); // y ≥ x
        match p.feasibility(&Budget::default()) {
            Feasibility::Witness(w) => {
                assert!(w["x"] >= 3 && w["x"] <= 10 && w["y"] >= w["x"]);
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_bounds_are_empty() {
        let mut p = Polyhedron::new();
        ge(&mut p, &[("x", 1)], -5); // x ≥ 5
        ge(&mut p, &[("x", -1)], 3); // x ≤ 3
        assert_eq!(p.feasibility(&Budget::default()), Feasibility::Empty);
    }

    #[test]
    fn rational_but_not_integer_gap_is_empty_after_tightening() {
        // 2x ≥ 1 and 2x ≤ 1: rationally {1/2}, no integer point.
        let mut p = Polyhedron::new();
        ge(&mut p, &[("x", 2)], -1);
        ge(&mut p, &[("x", -2)], 1);
        assert_eq!(p.feasibility(&Budget::default()), Feasibility::Empty);
    }

    #[test]
    fn equality_divisibility_is_checked() {
        // 2x + 4y = 3 has no integer solutions.
        let mut p = Polyhedron::new();
        eq(&mut p, &[("x", 2), ("y", 4)], -3);
        assert_eq!(p.feasibility(&Budget::default()), Feasibility::Empty);
    }

    #[test]
    fn equality_substitution_finds_witness() {
        // x = y + 2, x + y = 10 → x=6, y=4.
        let mut p = Polyhedron::new();
        eq(&mut p, &[("x", 1), ("y", -1)], -2);
        eq(&mut p, &[("x", 1), ("y", 1)], -10);
        match p.feasibility(&Budget::default()) {
            Feasibility::Witness(w) => {
                assert_eq!(w["x"], 6);
                assert_eq!(w["y"], 4);
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn chained_elimination_detects_emptiness() {
        // x ≤ y, y ≤ z, z ≤ x - 1: a cycle with a strict drop.
        let mut p = Polyhedron::new();
        ge(&mut p, &[("y", 1), ("x", -1)], 0);
        ge(&mut p, &[("z", 1), ("y", -1)], 0);
        ge(&mut p, &[("x", 1), ("z", -1)], -1);
        assert_eq!(p.feasibility(&Budget::default()), Feasibility::Empty);
    }

    #[test]
    fn unbounded_above_still_yields_small_witness() {
        // M ≥ 1, x ≥ M + 1 (no upper bounds anywhere).
        let mut p = Polyhedron::new();
        ge(&mut p, &[("M", 1)], -1);
        ge(&mut p, &[("x", 1), ("M", -1)], -1);
        match p.feasibility(&Budget::default()) {
            Feasibility::Witness(w) => {
                assert!(w["M"] >= 1 && w["x"] > w["M"]);
                assert!(w["M"] <= 4, "search should prefer small values: {w:?}");
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn tiling_linearization_shape_is_consistent() {
        // q = ⌊i/4⌋ modeled as 0 ≤ i - 4q ≤ 3, with i = 7 forced:
        // the only integer q is 1.
        let mut p = Polyhedron::new();
        eq(&mut p, &[("i", 1)], -7);
        ge(&mut p, &[("i", 1), ("q", -4)], 0);
        ge(&mut p, &[("q", 4), ("i", -1)], 3);
        match p.feasibility(&Budget::default()) {
            Feasibility::Witness(w) => assert_eq!(w["q"], 1),
            other => panic!("expected witness, got {other:?}"),
        }
        // Forcing q = 2 as well must be empty.
        let mut p2 = p.clone();
        eq(&mut p2, &[("q", 1)], -2);
        assert_eq!(p2.feasibility(&Budget::default()), Feasibility::Empty);
    }

    #[test]
    fn witness_satisfies_every_original_constraint() {
        let mut p = Polyhedron::new();
        ge(&mut p, &[("a", 3), ("b", -2)], 1);
        ge(&mut p, &[("b", 5), ("a", -1)], -3);
        ge(&mut p, &[("a", 1)], 0);
        ge(&mut p, &[("b", 1)], 0);
        ge(&mut p, &[("a", -1)], 50);
        ge(&mut p, &[("b", -1)], 50);
        match p.feasibility(&Budget::default()) {
            Feasibility::Witness(w) => assert!(p.satisfied_by(&w)),
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::var("x")
            .scale(2)
            .add(&LinExpr::var("y").scale(-1))
            .add(&LinExpr::constant(-3));
        assert_eq!(e.to_string(), "2x - y - 3");
        assert_eq!(LinExpr::constant(0).to_string(), "0");
    }
}
