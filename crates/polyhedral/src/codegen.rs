//! Loop-nest IR, C-like pretty-printing, and the Table VI LOC metric.
//!
//! `AlphaZ`'s final stage prints a scheduled program as C loops. The paper
//! reports, per `BPMax` version, the generated line count plus how many lines
//! were hand-written or macro-patched (Table VI) — evidence for the
//! "optimized programs should be generated, not hand-written" thesis.
//!
//! Here the same pipeline is: the `bpmax` crate builds a [`LoopNest`] for
//! each program version (from its validated schedules), [`render`] prints
//! it as C-like text, and [`CodeStats`] counts the lines. The IR is
//! *executable*: [`LoopNest::execute`] enumerates statement instances in
//! loop order, which lets tests prove a printed nest visits exactly the
//! points of the corresponding domain in schedule order — i.e. the printed
//! artifact is the real program, not décor.

use crate::affine::{AffineExpr, Env};
use std::fmt::Write as _;

/// A loop bound: max of lower expressions / min of upper expressions
/// (tiled loops need `min(hi, tt + ts)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bound {
    exprs: Vec<AffineExpr>,
    is_min: bool,
}

impl Bound {
    /// A single-expression bound.
    pub fn expr(e: AffineExpr) -> Self {
        Bound {
            exprs: vec![e],
            is_min: true,
        }
    }

    /// `min(e₀, e₁, …)` — for upper bounds.
    pub fn min(exprs: Vec<AffineExpr>) -> Self {
        assert!(!exprs.is_empty());
        Bound {
            exprs,
            is_min: true,
        }
    }

    /// `max(e₀, e₁, …)` — for lower bounds.
    pub fn max(exprs: Vec<AffineExpr>) -> Self {
        assert!(!exprs.is_empty());
        Bound {
            exprs,
            is_min: false,
        }
    }

    /// Evaluate under `env`.
    pub fn eval(&self, env: &Env) -> i64 {
        let it = self.exprs.iter().map(|e| e.eval(env));
        if self.is_min {
            it.min().unwrap() // lint: allow(unwrap): bound lists are non-empty by construction
        } else {
            it.max().unwrap() // lint: allow(unwrap): bound lists are non-empty by construction
        }
    }

    fn render(&self) -> String {
        if self.exprs.len() == 1 {
            return self.exprs[0].to_string();
        }
        let inner = self
            .exprs
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        if self.is_min {
            format!("min({inner})")
        } else {
            format!("max({inner})")
        }
    }
}

/// One node of the loop-nest IR.
#[derive(Clone, Debug)]
pub enum Node {
    /// `for var in lo..hi` (optionally a parallel loop).
    Loop {
        /// Loop variable name (becomes visible to inner bounds/statements).
        var: String,
        /// Inclusive lower bound.
        lo: Bound,
        /// Exclusive upper bound.
        hi: Bound,
        /// Whether this loop is annotated `parallel` (OpenMP
        /// `parallel for` in the paper's generated code).
        parallel: bool,
        /// Loop body.
        body: Vec<Node>,
    },
    /// A guarded statement instance `name(args…)`.
    Stmt {
        /// Statement (macro) name, e.g. `"S0"`.
        name: String,
        /// Index arguments.
        args: Vec<AffineExpr>,
        /// Guard conjunction (`expr ≥ 0` each); empty = unconditional.
        guard: Vec<AffineExpr>,
    },
    /// A free-form comment line (counts toward LOC like `AlphaZ`'s
    /// `#define` scaffolding lines).
    Comment(String),
}

/// Builder helpers.
impl Node {
    /// A sequential loop.
    pub fn loop_(var: &str, lo: Bound, hi: Bound, body: Vec<Node>) -> Node {
        Node::Loop {
            var: var.to_string(),
            lo,
            hi,
            parallel: false,
            body,
        }
    }

    /// A parallel loop.
    pub fn par_loop(var: &str, lo: Bound, hi: Bound, body: Vec<Node>) -> Node {
        Node::Loop {
            var: var.to_string(),
            lo,
            hi,
            parallel: true,
            body,
        }
    }

    /// An unguarded statement.
    pub fn stmt(name: &str, args: Vec<AffineExpr>) -> Node {
        Node::Stmt {
            name: name.to_string(),
            args,
            guard: Vec::new(),
        }
    }

    /// A guarded statement (`guards[i] ≥ 0` must all hold).
    pub fn stmt_if(name: &str, args: Vec<AffineExpr>, guard: Vec<AffineExpr>) -> Node {
        Node::Stmt {
            name: name.to_string(),
            args,
            guard,
        }
    }
}

/// A whole generated program: name, parameters, and top-level nodes.
#[derive(Clone, Debug)]
pub struct LoopNest {
    /// Program name (rendered as a comment header).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Top-level nodes.
    pub body: Vec<Node>,
}

impl LoopNest {
    /// Build a program.
    pub fn new(name: &str, params: &[&str], body: Vec<Node>) -> Self {
        LoopNest {
            name: name.to_string(),
            params: params.iter().map(ToString::to_string).collect(),
            body,
        }
    }

    /// Execute: call `visit(stmt_name, args)` for every statement instance
    /// in loop order (parallel loops execute in index order — the
    /// sequential elaboration of the parallel program).
    pub fn execute(&self, params: &Env, visit: &mut impl FnMut(&str, &[i64])) {
        let mut env = params.clone();
        for node in &self.body {
            exec_node(node, &mut env, visit);
        }
    }

    /// Count of statement instances at given parameter values.
    pub fn count_instances(&self, params: &Env) -> usize {
        let mut n = 0;
        self.execute(params, &mut |_, _| n += 1);
        n
    }
}

fn exec_node(node: &Node, env: &mut Env, visit: &mut impl FnMut(&str, &[i64])) {
    match node {
        Node::Comment(_) => {}
        Node::Stmt { name, args, guard } => {
            if guard.iter().all(|g| g.eval(env) >= 0) {
                let vals: Vec<i64> = args.iter().map(|a| a.eval(env)).collect();
                visit(name, &vals);
            }
        }
        Node::Loop {
            var, lo, hi, body, ..
        } => {
            let l = lo.eval(env);
            let h = hi.eval(env);
            let saved = env.get(var).copied();
            for val in l..h {
                env.insert(var.clone(), val);
                for n in body {
                    exec_node(n, env, visit);
                }
            }
            match saved {
                Some(s) => {
                    env.insert(var.clone(), s);
                }
                None => {
                    env.remove(var);
                }
            }
        }
    }
}

/// Render the program as C-like text.
pub fn render(nest: &LoopNest) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// generated: {}", nest.name);
    let _ = writeln!(out, "// parameters: {}", nest.params.join(", "));
    let _ = writeln!(out, "{{");
    for node in &nest.body {
        render_node(node, 1, &mut out);
    }
    let _ = writeln!(out, "}}");
    out
}

fn render_node(node: &Node, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match node {
        Node::Comment(text) => {
            let _ = writeln!(out, "{pad}// {text}");
        }
        Node::Stmt { name, args, guard } => {
            let rendered_args = args
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            if guard.is_empty() {
                let _ = writeln!(out, "{pad}{name}({rendered_args});");
            } else {
                let cond = guard
                    .iter()
                    .map(|g| format!("{g} >= 0"))
                    .collect::<Vec<_>>()
                    .join(" && ");
                let _ = writeln!(out, "{pad}if ({cond}) {name}({rendered_args});");
            }
        }
        Node::Loop {
            var,
            lo,
            hi,
            parallel,
            body,
        } => {
            if *parallel {
                let _ = writeln!(out, "{pad}#pragma omp parallel for");
            }
            let _ = writeln!(
                out,
                "{pad}for ({var} = {}; {var} < {}; {var}++) {{",
                lo.render(),
                hi.render()
            );
            for n in body {
                render_node(n, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// Code statistics in the shape of the paper's Table VI.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodeStats {
    /// Program name.
    pub name: String,
    /// Generated lines of code (non-blank lines of [`render`] output).
    pub loc: usize,
    /// Number of loops.
    pub loops: usize,
    /// Number of parallel loops.
    pub parallel_loops: usize,
    /// Number of statements.
    pub statements: usize,
    /// Maximum loop nesting depth.
    pub max_depth: usize,
}

/// Compute [`CodeStats`] for a program.
pub fn stats(nest: &LoopNest) -> CodeStats {
    let loc = render(nest)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count();
    let mut loops = 0;
    let mut parallel_loops = 0;
    let mut statements = 0;
    let mut max_depth = 0;
    fn walk(
        nodes: &[Node],
        depth: usize,
        loops: &mut usize,
        par: &mut usize,
        stmts: &mut usize,
        max_depth: &mut usize,
    ) {
        for n in nodes {
            match n {
                Node::Comment(_) => {}
                Node::Stmt { .. } => *stmts += 1,
                Node::Loop { parallel, body, .. } => {
                    *loops += 1;
                    if *parallel {
                        *par += 1;
                    }
                    *max_depth = (*max_depth).max(depth + 1);
                    walk(body, depth + 1, loops, par, stmts, max_depth);
                }
            }
        }
    }
    walk(
        &nest.body,
        0,
        &mut loops,
        &mut parallel_loops,
        &mut statements,
        &mut max_depth,
    );
    CodeStats {
        name: nest.name.clone(),
        loc,
        loops,
        parallel_loops,
        statements,
        max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{c, env, v};
    use crate::domain::triangle;

    /// Triangle scan: for i in 0..N, for j in i..N, S(i, j).
    fn triangle_nest() -> LoopNest {
        LoopNest::new(
            "triangle",
            &["N"],
            vec![Node::loop_(
                "i",
                Bound::expr(c(0)),
                Bound::expr(v("N")),
                vec![Node::loop_(
                    "j",
                    Bound::expr(v("i")),
                    Bound::expr(v("N")),
                    vec![Node::stmt("S", vec![v("i"), v("j")])],
                )],
            )],
        )
    }

    #[test]
    fn executes_exactly_the_domain() {
        let nest = triangle_nest();
        let params = env(&[("N", 6)]);
        let mut visited = Vec::new();
        nest.execute(&params, &mut |name, args| {
            assert_eq!(name, "S");
            visited.push(args.to_vec());
        });
        let dom = triangle("i", "j", "N");
        let expected = dom.enumerate(&dom.param_box(&params, "N"), &params);
        assert_eq!(visited, expected);
    }

    #[test]
    fn guards_filter_instances() {
        // only the diagonal: guard j - i == 0 encoded as (j-i >= 0 && i-j >= 0)
        let nest = LoopNest::new(
            "diag",
            &["N"],
            vec![Node::loop_(
                "i",
                Bound::expr(c(0)),
                Bound::expr(v("N")),
                vec![Node::loop_(
                    "j",
                    Bound::expr(c(0)),
                    Bound::expr(v("N")),
                    vec![Node::stmt_if(
                        "D",
                        vec![v("i")],
                        vec![v("j") - v("i"), v("i") - v("j")],
                    )],
                )],
            )],
        );
        assert_eq!(nest.count_instances(&env(&[("N", 5)])), 5);
    }

    #[test]
    fn min_max_bounds() {
        // for t in 0..N step-tiles of 3: for i in max(t*3... emulate via
        // explicit min bound: for i in t..min(N, t+3)
        let nest = LoopNest::new(
            "tiled",
            &["N"],
            vec![Node::loop_(
                "t",
                Bound::expr(c(0)),
                Bound::expr(v("N")),
                vec![Node::loop_(
                    "i",
                    Bound::expr(v("t") * 3),
                    Bound::min(vec![v("N"), v("t") * 3 + 3]),
                    vec![Node::stmt("S", vec![v("i")])],
                )],
            )],
        );
        // t ranges 0..N but only t with t*3 < N contribute; every i in 0..N
        // visited exactly ceil-consistent times... with t unbounded each i
        // visited once when t = i/3.
        let mut seen = Vec::new();
        nest.execute(&env(&[("N", 7)]), &mut |_, a| seen.push(a[0]));
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn render_and_stats() {
        let nest = triangle_nest();
        let text = render(&nest);
        assert!(text.contains("for (i = 0; i < N; i++) {"));
        assert!(text.contains("S(i, j);"));
        let st = stats(&nest);
        assert_eq!(st.loops, 2);
        assert_eq!(st.statements, 1);
        assert_eq!(st.max_depth, 2);
        assert_eq!(st.parallel_loops, 0);
        assert_eq!(
            st.loc,
            text.lines().filter(|l| !l.trim().is_empty()).count()
        );
    }

    #[test]
    fn parallel_loop_renders_pragma() {
        let nest = LoopNest::new(
            "par",
            &["N"],
            vec![Node::par_loop(
                "i",
                Bound::expr(c(0)),
                Bound::expr(v("N")),
                vec![Node::stmt("S", vec![v("i")])],
            )],
        );
        let text = render(&nest);
        assert!(text.contains("#pragma omp parallel for"));
        assert_eq!(stats(&nest).parallel_loops, 1);
    }

    #[test]
    fn loop_variable_scoping_restores() {
        // inner loop reuses name "i": after the nest, outer value visible.
        let nest = LoopNest::new(
            "scope",
            &[],
            vec![Node::loop_(
                "i",
                Bound::expr(c(0)),
                Bound::expr(c(2)),
                vec![
                    Node::loop_(
                        "i",
                        Bound::expr(c(10)),
                        Bound::expr(c(12)),
                        vec![Node::stmt("In", vec![v("i")])],
                    ),
                    Node::stmt("Out", vec![v("i")]),
                ],
            )],
        );
        let mut outs = Vec::new();
        nest.execute(&env(&[]), &mut |n, a| {
            if n == "Out" {
                outs.push(a[0]);
            }
        });
        assert_eq!(outs, vec![0, 1]);
    }

    #[test]
    fn comments_do_not_execute_but_render() {
        let nest = LoopNest::new(
            "c",
            &[],
            vec![Node::Comment("hello".into()), Node::stmt("S", vec![c(0)])],
        );
        assert_eq!(nest.count_instances(&env(&[])), 1);
        assert!(render(&nest).contains("// hello"));
    }
}
