//! Affine expressions and maps over named variables.
//!
//! Everything in the polyhedral model — iteration domains, dependences,
//! schedules, memory maps — is built from integer affine expressions
//! `Σ cᵥ·v + c₀` over index variables (`i1`, `j1`, …) and size parameters
//! (`M`, `N`). We use *named* variables throughout: `BPMax` schedules mix
//! variables of different arities (Tables II–V schedule 2-D, 4-D, 5-D and
//! 6-D variables into one 7/8-dimensional time), and names keep those maps
//! readable and composable without positional bookkeeping.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An evaluation environment: variable name → integer value.
pub type Env = BTreeMap<String, i64>;

/// Build an [`Env`] from `(name, value)` pairs.
pub fn env(pairs: &[(&str, i64)]) -> Env {
    pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
}

/// An integer affine expression `Σ coeff(v)·v + constant`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    coeffs: BTreeMap<String, i64>,
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The variable `name` with coefficient 1.
    pub fn var(name: &str) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.to_string(), 1);
        AffineExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Coefficient of `name` (0 if absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.coeffs.get(name).copied().unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Variables with non-zero coefficient, in name order.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.coeffs
            .iter()
            .filter(|(_, &c)| c != 0)
            .map(|(k, _)| k.as_str())
    }

    /// True if no variable has a non-zero coefficient.
    pub fn is_constant(&self) -> bool {
        self.coeffs.values().all(|&c| c == 0)
    }

    /// Evaluate under `env`. Panics if a needed variable is unbound —
    /// an unbound name in a schedule or domain is a programming error we
    /// want loudly, not silently-as-zero.
    pub fn eval(&self, env: &Env) -> i64 {
        let mut acc = self.constant;
        for (v, &c) in &self.coeffs {
            if c == 0 {
                continue;
            }
            let val = *env
                .get(v)
                .unwrap_or_else(|| panic!("unbound variable {v:?} in affine expression {self}")); // lint: allow(panic): unbound variable is a caller bug, documented
            acc += c * val;
        }
        acc
    }

    /// Substitute each variable by an affine expression (simultaneous).
    /// Variables absent from `subs` are left intact — that is how
    /// parameters (`M`, `N`) survive composition.
    pub fn substitute(&self, subs: &BTreeMap<String, AffineExpr>) -> AffineExpr {
        let mut out = AffineExpr::constant(self.constant);
        for (v, &c) in &self.coeffs {
            if c == 0 {
                continue;
            }
            match subs.get(v) {
                Some(e) => out = out + e.clone() * c,
                None => out = out + AffineExpr::var(v) * c,
            }
        }
        out
    }
}

impl Add for AffineExpr {
    type Output = AffineExpr;
    fn add(mut self, rhs: AffineExpr) -> AffineExpr {
        for (v, c) in rhs.coeffs {
            *self.coeffs.entry(v).or_insert(0) += c;
        }
        self.constant += rhs.constant;
        self
    }
}

impl Add<i64> for AffineExpr {
    type Output = AffineExpr;
    fn add(mut self, rhs: i64) -> AffineExpr {
        self.constant += rhs;
        self
    }
}

impl Sub for AffineExpr {
    type Output = AffineExpr;
    fn sub(self, rhs: AffineExpr) -> AffineExpr {
        self + (-rhs)
    }
}

impl Sub<i64> for AffineExpr {
    type Output = AffineExpr;
    fn sub(self, rhs: i64) -> AffineExpr {
        self + (-rhs)
    }
}

impl Neg for AffineExpr {
    type Output = AffineExpr;
    fn neg(mut self) -> AffineExpr {
        for c in self.coeffs.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<i64> for AffineExpr {
    type Output = AffineExpr;
    fn mul(mut self, rhs: i64) -> AffineExpr {
        for c in self.coeffs.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, &c) in &self.coeffs {
            if c == 0 {
                continue;
            }
            if first {
                match c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    _ => write!(f, "{c}{v}")?,
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -c)?;
            }
        }
        if self.constant != 0 || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else if self.constant > 0 {
                write!(f, " + {}", self.constant)?;
            } else {
                write!(f, " - {}", -self.constant)?;
            }
        }
        Ok(())
    }
}

/// Shorthand: the variable `name` as an expression.
pub fn v(name: &str) -> AffineExpr {
    AffineExpr::var(name)
}

/// Shorthand: the constant `c` as an expression.
pub fn c(value: i64) -> AffineExpr {
    AffineExpr::constant(value)
}

/// A multi-dimensional affine map `(inputs…) ↦ (expr₀, expr₁, …)`.
///
/// `inputs` document (and validate) which variables the map expects; the
/// expressions may also mention parameters, which must be bound in the
/// evaluation environment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffineMap {
    inputs: Vec<String>,
    exprs: Vec<AffineExpr>,
}

impl AffineMap {
    /// Build a map from input names and output expressions.
    pub fn new(inputs: &[&str], exprs: Vec<AffineExpr>) -> Self {
        AffineMap {
            inputs: inputs.iter().map(ToString::to_string).collect(),
            exprs,
        }
    }

    /// Identity map on `inputs`.
    pub fn identity(inputs: &[&str]) -> Self {
        AffineMap::new(inputs, inputs.iter().map(|s| AffineExpr::var(s)).collect())
    }

    /// Input variable names.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Output expressions.
    pub fn exprs(&self) -> &[AffineExpr] {
        &self.exprs
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.exprs.len()
    }

    /// Evaluate all outputs under `env`.
    pub fn eval(&self, env: &Env) -> Vec<i64> {
        self.exprs.iter().map(|e| e.eval(env)).collect()
    }

    /// Evaluate, binding `self.inputs` to `point` on top of `params`.
    pub fn eval_point(&self, point: &[i64], params: &Env) -> Vec<i64> {
        assert_eq!(
            point.len(),
            self.inputs.len(),
            "point arity {} does not match map inputs {:?}",
            point.len(),
            self.inputs
        );
        let mut env = params.clone();
        for (name, &val) in self.inputs.iter().zip(point) {
            env.insert(name.clone(), val);
        }
        self.eval(&env)
    }

    /// Compose: `self ∘ inner` — apply `inner` first, then `self`.
    /// `inner.out_dim()` must equal `self.inputs.len()`; `self`'s k-th input
    /// variable is substituted by `inner`'s k-th output expression.
    pub fn compose(&self, inner: &AffineMap) -> AffineMap {
        assert_eq!(
            inner.out_dim(),
            self.inputs.len(),
            "composition arity mismatch"
        );
        let subs: BTreeMap<String, AffineExpr> = self
            .inputs
            .iter()
            .cloned()
            .zip(inner.exprs.iter().cloned())
            .collect();
        AffineMap {
            inputs: inner.inputs.clone(),
            exprs: self.exprs.iter().map(|e| e.substitute(&subs)).collect(),
        }
    }
}

impl fmt::Display for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) -> (", self.inputs.join(", "))?;
        for (k, e) in self.exprs.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_eval() {
        let e = v("i") * 2 - v("j") + 5;
        assert_eq!(e.coeff("i"), 2);
        assert_eq!(e.coeff("j"), -1);
        assert_eq!(e.coeff("k"), 0);
        assert_eq!(e.eval(&env(&[("i", 3), ("j", 4)])), 7);
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn unbound_variable_panics() {
        v("x").eval(&env(&[]));
    }

    #[test]
    fn display_formats() {
        assert_eq!((v("i") - v("j") + 1).to_string(), "i - j + 1");
        assert_eq!((c(0)).to_string(), "0");
        assert_eq!((-v("i")).to_string(), "-i");
        assert_eq!((v("i") * 3 - 2).to_string(), "3i - 2");
    }

    #[test]
    fn substitution() {
        // e = i + 2j; substitute i := a + 1, j := b - a
        let e = v("i") + v("j") * 2;
        let mut subs = BTreeMap::new();
        subs.insert("i".to_string(), v("a") + 1);
        subs.insert("j".to_string(), v("b") - v("a"));
        let s = e.substitute(&subs);
        // = (a+1) + 2(b-a) = -a + 2b + 1
        assert_eq!(s.coeff("a"), -1);
        assert_eq!(s.coeff("b"), 2);
        assert_eq!(s.constant_term(), 1);
    }

    #[test]
    fn map_eval_point_binds_inputs_over_params() {
        // (i, j) -> (j - i, i, M)
        let m = AffineMap::new(&["i", "j"], vec![v("j") - v("i"), v("i"), v("M")]);
        let out = m.eval_point(&[2, 5], &env(&[("M", 100)]));
        assert_eq!(out, vec![3, 2, 100]);
    }

    #[test]
    fn identity_map() {
        let m = AffineMap::identity(&["a", "b"]);
        assert_eq!(m.eval_point(&[7, -2], &env(&[])), vec![7, -2]);
    }

    #[test]
    fn composition() {
        // inner: (i, j) -> (i + j, i - j)
        let inner = AffineMap::new(&["i", "j"], vec![v("i") + v("j"), v("i") - v("j")]);
        // outer: (x, y) -> (2x + y)
        let outer = AffineMap::new(&["x", "y"], vec![v("x") * 2 + v("y")]);
        let comp = outer.compose(&inner);
        // = 2(i+j) + (i-j) = 3i + j
        assert_eq!(comp.eval_point(&[1, 2], &env(&[])), vec![5]);
        assert_eq!(comp.inputs(), &["i".to_string(), "j".to_string()]);
    }

    #[test]
    fn composition_keeps_parameters() {
        let inner = AffineMap::new(&["i"], vec![v("i") + 1]);
        let outer = AffineMap::new(&["x"], vec![v("x") + v("N")]);
        let comp = outer.compose(&inner);
        assert_eq!(comp.eval_point(&[4], &env(&[("N", 10)])), vec![15]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn eval_point_arity_mismatch_panics() {
        let m = AffineMap::identity(&["a", "b"]);
        m.eval_point(&[1], &env(&[]));
    }
}
