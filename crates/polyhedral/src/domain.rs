//! Polyhedral domains: conjunctions of affine constraints.
//!
//! A domain describes the set of integer points (iteration instances) a
//! statement executes on, e.g. the `BPMax` F-table domain
//! `{ (i1,j1,i2,j2) | 0 ≤ i1 ≤ j1 < M ∧ 0 ≤ i2 ≤ j2 < N }` — "a triangular
//! collection of triangles". Constraints may mention size parameters, which
//! are bound at verification time (we verify schedules exhaustively on
//! scaled instances rather than symbolically; see `dependence`).

use crate::affine::{AffineExpr, Env};
use std::fmt;

/// One affine constraint: `expr ≥ 0` or `expr = 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Constraint {
    /// `expr ≥ 0`
    Ge0(AffineExpr),
    /// `expr = 0`
    Eq0(AffineExpr),
}

impl Constraint {
    /// Is the constraint satisfied under `env`?
    pub fn holds(&self, env: &Env) -> bool {
        match self {
            Constraint::Ge0(e) => e.eval(env) >= 0,
            Constraint::Eq0(e) => e.eval(env) == 0,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Ge0(e) => write!(f, "{e} >= 0"),
            Constraint::Eq0(e) => write!(f, "{e} == 0"),
        }
    }
}

/// A polyhedral domain: index variable names plus a constraint conjunction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Domain {
    indices: Vec<String>,
    constraints: Vec<Constraint>,
}

impl Domain {
    /// A domain over `indices` with no constraints (the whole lattice).
    pub fn universe(indices: &[&str]) -> Self {
        Domain {
            indices: indices.iter().map(ToString::to_string).collect(),
            constraints: Vec::new(),
        }
    }

    /// Add a constraint `expr ≥ 0` (builder style).
    pub fn ge0(mut self, expr: AffineExpr) -> Self {
        self.constraints.push(Constraint::Ge0(expr));
        self
    }

    /// Add `lo ≤ e` (i.e. `e − lo ≥ 0`).
    pub fn le(self, lo: AffineExpr, e: AffineExpr) -> Self {
        self.ge0(e - lo)
    }

    /// Add `e < hi` (i.e. `hi − e − 1 ≥ 0`).
    pub fn lt(self, e: AffineExpr, hi: AffineExpr) -> Self {
        self.ge0(hi - e - 1)
    }

    /// Add a constraint `expr = 0`.
    pub fn eq0(mut self, expr: AffineExpr) -> Self {
        self.constraints.push(Constraint::Eq0(expr));
        self
    }

    /// Index variable names.
    pub fn indices(&self) -> &[String] {
        &self.indices
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.indices.len()
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Intersect with another domain over the *same* index list.
    pub fn intersect(mut self, other: &Domain) -> Self {
        assert_eq!(self.indices, other.indices, "intersect: index mismatch");
        self.constraints.extend(other.constraints.iter().cloned());
        self
    }

    /// Does `point` (bound to this domain's indices, over `params`) satisfy
    /// every constraint?
    pub fn contains(&self, point: &[i64], params: &Env) -> bool {
        assert_eq!(
            point.len(),
            self.indices.len(),
            "point arity does not match domain"
        );
        let mut env = params.clone();
        for (name, &val) in self.indices.iter().zip(point) {
            env.insert(name.clone(), val);
        }
        self.constraints.iter().all(|c| c.holds(&env))
    }

    /// Enumerate all points inside `box_` (inclusive lo, exclusive hi per
    /// dimension) that satisfy the constraints. Intended for verification
    /// at small parameter values — complexity is the box volume.
    pub fn enumerate(&self, box_: &[(i64, i64)], params: &Env) -> Vec<Vec<i64>> {
        assert_eq!(box_.len(), self.indices.len(), "box arity mismatch");
        let mut out = Vec::new();
        let mut point = vec![0i64; box_.len()];
        self.enum_rec(box_, params, 0, &mut point, &mut out);
        out
    }

    fn enum_rec(
        &self,
        box_: &[(i64, i64)],
        params: &Env,
        dim: usize,
        point: &mut Vec<i64>,
        out: &mut Vec<Vec<i64>>,
    ) {
        if dim == box_.len() {
            if self.contains(point, params) {
                out.push(point.clone());
            }
            return;
        }
        for val in box_[dim].0..box_[dim].1 {
            point[dim] = val;
            self.enum_rec(box_, params, dim + 1, point, out);
        }
    }

    /// Convenience: the box `[0, bound)^dim` where `bound` is the value of
    /// parameter `param` in `params` — covers any `BPMax` index domain.
    pub fn param_box(&self, params: &Env, param: &str) -> Vec<(i64, i64)> {
        let b = *params
            .get(param)
            .unwrap_or_else(|| panic!("parameter {param:?} unbound")); // lint: allow(panic): unbound parameter is a caller bug
        vec![(0, b); self.indices.len()]
    }

    /// Number of points in the box satisfying the constraints.
    pub fn count(&self, box_: &[(i64, i64)], params: &Env) -> usize {
        self.enumerate(box_, params).len()
    }

    /// Is the domain empty within the box?
    pub fn is_empty_in(&self, box_: &[(i64, i64)], params: &Env) -> bool {
        self.count(box_, params) == 0
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ ({}) | ", self.indices.join(", "))?;
        for (k, c) in self.constraints.iter().enumerate() {
            if k > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " }}")
    }
}

/// The standard BPMax-style triangular domain
/// `{ (i, j) | 0 ≤ i ≤ j < bound }` over the given index names, with
/// `bound` a parameter name.
pub fn triangle(i: &str, j: &str, bound: &str) -> Domain {
    use crate::affine::v;
    Domain::universe(&[i, j])
        .ge0(v(i))
        .ge0(v(j) - v(i))
        .lt(v(j), v(bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{env, v};

    #[test]
    fn membership() {
        let d = triangle("i", "j", "N");
        let params = env(&[("N", 4)]);
        assert!(d.contains(&[0, 0], &params));
        assert!(d.contains(&[1, 3], &params));
        assert!(!d.contains(&[3, 1], &params)); // j < i
        assert!(!d.contains(&[0, 4], &params)); // j = N
        assert!(!d.contains(&[-1, 0], &params));
    }

    #[test]
    fn enumerate_triangle_counts() {
        let d = triangle("i", "j", "N");
        let params = env(&[("N", 5)]);
        let pts = d.enumerate(&d.param_box(&params, "N"), &params);
        assert_eq!(pts.len(), 15); // 5·6/2
                                   // lexicographic by construction of the scan
        let mut sorted = pts.clone();
        sorted.sort();
        assert_eq!(pts, sorted);
    }

    #[test]
    fn equality_constraints() {
        let d = Domain::universe(&["i", "j"]).eq0(v("i") - v("j"));
        let params = env(&[]);
        let pts = d.enumerate(&[(0, 3), (0, 3)], &params);
        assert_eq!(pts, vec![vec![0, 0], vec![1, 1], vec![2, 2]]);
    }

    #[test]
    fn intersect_conjoins() {
        let d1 = Domain::universe(&["i"]).ge0(v("i"));
        let d2 = Domain::universe(&["i"]).lt(v("i"), v("N"));
        let d = d1.intersect(&d2);
        let params = env(&[("N", 3)]);
        assert_eq!(d.count(&[(-5, 10)], &params), 3);
    }

    #[test]
    fn empty_detection() {
        let d = Domain::universe(&["i"]).ge0(v("i") - 5).lt(v("i"), v("N"));
        assert!(d.is_empty_in(&[(0, 10)], &env(&[("N", 5)])));
        assert!(!d.is_empty_in(&[(0, 10)], &env(&[("N", 6)])));
    }

    #[test]
    fn le_lt_builders() {
        let d = Domain::universe(&["k"])
            .le(v("i"), v("k"))
            .lt(v("k"), v("j"));
        // k in [i, j)
        let params = env(&[("i", 2), ("j", 5)]);
        let pts = d.enumerate(&[(0, 10)], &params);
        assert_eq!(pts, vec![vec![2], vec![3], vec![4]]);
    }

    #[test]
    fn display_is_readable() {
        let d = triangle("i1", "j1", "M");
        let s = d.to_string();
        assert!(s.contains("i1 >= 0"));
        assert!(s.contains("-i1 + j1 >= 0"));
    }
}
