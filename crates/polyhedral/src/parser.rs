//! A parser for a miniature Alpha-like surface syntax.
//!
//! `AlphaZ` programs come in two pieces: an *alphabets* file declaring the
//! system (parameters, variables over polyhedral domains, equations) and a
//! command script applying mapping directives (`setSpaceTimeMap`,
//! `setParallel`, …). This module parses a compact dialect covering the
//! parts this reproduction models — domains, dependences, schedules,
//! parallel annotations — into a ready-to-verify [`System`]:
//!
//! ```text
//! system DMP {M, N}
//!
//! var F  {i1,j1,i2,j2 | 0 <= i1 <= j1 < M && 0 <= i2 <= j2 < N};
//! var R0 {i1,j1,i2,j2,k1,k2 | 0 <= i1 <= k1 < j1 < M
//!                           && 0 <= i2 <= k2 < j2 < N};
//!
//! dep "R0 reads left"  R0 -> F (i1, k1, i2, k2);
//! dep "R0 reads right" R0 -> F (k1+1, j1, k2+1, j2);
//! reduce "F consumes R0" F <- R0 (i1, j1, i2, j2);
//!
//! schedule F  (i1,j1,i2,j2 -> j1-i1, i1, M+N, i2, j2, 0);
//! schedule R0 (i1,j1,i2,j2,k1,k2 -> j1-i1, i1, k1, i2, k2, j2);
//! parallel 1;
//! ```
//!
//! Statements:
//! * `system NAME {P1, P2, …}` — header, must come first.
//! * `var NAME {i, j, … | constraints};` — a variable and its domain.
//!   Constraints are `&&`-conjoined chains of `expr (<|<=|>=|>|==) expr`
//!   (chains like `0 <= i <= j < N` expand pairwise).
//! * `dep "label" CONSUMER -> PRODUCER (exprs…) [when {i,… | constraints}];`
//! * `reduce "label" CONSUMER <- PRODUCER (exprs…);` — a reduction-result
//!   dependence (enumerated over the producer; the map sends the
//!   reduction-body point to the consuming cell).
//! * `schedule NAME (i, j, … -> exprs…);`
//! * `parallel D;` — mark time dimension `D` parallel.
//!
//! Affine expressions: `3*i + j - 2`, `-i1 + M`, parenthesised terms.

use crate::affine::{AffineExpr, AffineMap};
use crate::dependence::{Dependence, System, Var};
use crate::domain::Domain;
use crate::schedule::Schedule;
use std::fmt;

/// A parse error with a (line, column) position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Sym(&'static str),
}

struct Lexer {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

const SYMBOLS: [&str; 18] = [
    "->", "<-", "<=", ">=", "==", "&&", "{", "}", "(", ")", "|", ",", ";", "+", "-", "*", "<", ">",
];

fn lex(src: &str) -> Result<Lexer, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            col += 1;
            i += 1;
            continue;
        }
        // comments: `//` or `#` to end of line
        if c == '#' || (c == '/' && bytes.get(i + 1) == Some(&'/')) {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '"' {
            let (start_line, start_col) = (line, col);
            let mut s = String::new();
            i += 1;
            col += 1;
            loop {
                match bytes.get(i) {
                    Some('"') => {
                        i += 1;
                        col += 1;
                        break;
                    }
                    Some('\n') | None => {
                        return Err(ParseError {
                            line: start_line,
                            col: start_col,
                            message: "unterminated string".to_string(),
                        })
                    }
                    Some(&ch) => {
                        s.push(ch);
                        i += 1;
                        col += 1;
                    }
                }
            }
            toks.push((Tok::Str(s), start_line, start_col));
            continue;
        }
        if c.is_ascii_digit() {
            let (l, co) = (line, col);
            let mut v = 0i64;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                v = v * 10 + (bytes[i] as i64 - '0' as i64);
                i += 1;
                col += 1;
            }
            toks.push((Tok::Int(v), l, co));
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let (l, co) = (line, col);
            let mut s = String::new();
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                s.push(bytes[i]);
                i += 1;
                col += 1;
            }
            toks.push((Tok::Ident(s), l, co));
            continue;
        }
        for sym in SYMBOLS {
            if src[byte_index(&bytes, i)..].starts_with(sym) {
                toks.push((Tok::Sym(sym), line, col));
                i += sym.chars().count();
                col += sym.chars().count();
                continue 'outer;
            }
        }
        return Err(ParseError {
            line,
            col,
            message: format!("unexpected character {c:?}"),
        });
    }
    Ok(Lexer { toks, pos: 0 })
}

fn byte_index(chars: &[char], char_idx: usize) -> usize {
    chars[..char_idx].iter().map(|c| c.len_utf8()).sum()
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|&(_, l, c)| (l, c))
            .unwrap_or((1, 1))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_sym(&mut self, sym: &'static str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Sym(s)) if *s == sym => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected {sym:?}, found {other:?}"))),
        }
    }

    fn eat_sym(&mut self, sym: &'static str) -> bool {
        matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) && {
            self.pos += 1;
            true
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected {kw:?}, found {other:?}"))),
        }
    }
}

/// expr := term (('+'|'-') term)*
/// term := INT ['*' atom] | ['-'] atom | '-' term
/// atom := IDENT | '(' expr ')'
fn parse_expr(lx: &mut Lexer) -> Result<AffineExpr, ParseError> {
    let mut acc = parse_term(lx)?;
    loop {
        if lx.eat_sym("+") {
            acc = acc + parse_term(lx)?;
        } else if lx.eat_sym("-") {
            acc = acc - parse_term(lx)?;
        } else {
            return Ok(acc);
        }
    }
}

fn parse_term(lx: &mut Lexer) -> Result<AffineExpr, ParseError> {
    if lx.eat_sym("-") {
        return Ok(-parse_term(lx)?);
    }
    match lx.peek().cloned() {
        Some(Tok::Int(v)) => {
            lx.pos += 1;
            if lx.eat_sym("*") {
                let atom = parse_atom(lx)?;
                Ok(atom * v)
            } else {
                Ok(AffineExpr::constant(v))
            }
        }
        _ => parse_atom(lx),
    }
}

fn parse_atom(lx: &mut Lexer) -> Result<AffineExpr, ParseError> {
    match lx.peek().cloned() {
        Some(Tok::Ident(name)) => {
            lx.pos += 1;
            Ok(AffineExpr::var(&name))
        }
        Some(Tok::Sym("(")) => {
            lx.pos += 1;
            let e = parse_expr(lx)?;
            lx.expect_sym(")")?;
            Ok(e)
        }
        other => Err(lx.err(format!("expected expression, found {other:?}"))),
    }
}

/// Chained comparison list: `e0 op e1 op e2 …` — each adjacent pair
/// contributes one constraint to `dom`.
fn parse_constraint_chain(lx: &mut Lexer, mut dom: Domain) -> Result<Domain, ParseError> {
    let mut lhs = parse_expr(lx)?;
    let mut any = false;
    loop {
        let op = match lx.peek() {
            Some(Tok::Sym(s @ ("<" | "<=" | ">" | ">=" | "=="))) => *s,
            _ => {
                if any {
                    return Ok(dom);
                }
                return Err(lx.err("expected comparison operator"));
            }
        };
        lx.pos += 1;
        let rhs = parse_expr(lx)?;
        dom = match op {
            "<" => dom.ge0(rhs.clone() - lhs.clone() - 1),
            "<=" => dom.ge0(rhs.clone() - lhs.clone()),
            ">" => dom.ge0(lhs.clone() - rhs.clone() - 1),
            ">=" => dom.ge0(lhs.clone() - rhs.clone()),
            "==" => dom.eq0(lhs.clone() - rhs.clone()),
            _ => unreachable!(),
        };
        lhs = rhs;
        any = true;
    }
}

/// `{i, j, … | constraints}` (constraint part optional: `{i, j}`).
fn parse_domain(lx: &mut Lexer) -> Result<Domain, ParseError> {
    lx.expect_sym("{")?;
    let mut indices = vec![lx.expect_ident()?];
    while lx.eat_sym(",") {
        indices.push(lx.expect_ident()?);
    }
    let index_refs: Vec<&str> = indices.iter().map(String::as_str).collect();
    let mut dom = Domain::universe(&index_refs);
    if lx.eat_sym("|") {
        dom = parse_constraint_chain(lx, dom)?;
        while lx.eat_sym("&&") {
            dom = parse_constraint_chain(lx, dom)?;
        }
    }
    lx.expect_sym("}")?;
    Ok(dom)
}

/// `(i, j, … -> e0, e1, …)` — an affine map with declared inputs.
fn parse_map(lx: &mut Lexer) -> Result<AffineMap, ParseError> {
    lx.expect_sym("(")?;
    let mut inputs = vec![lx.expect_ident()?];
    while lx.eat_sym(",") {
        inputs.push(lx.expect_ident()?);
    }
    lx.expect_sym("->")?;
    let mut exprs = vec![parse_expr(lx)?];
    while lx.eat_sym(",") {
        exprs.push(parse_expr(lx)?);
    }
    lx.expect_sym(")")?;
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    Ok(AffineMap::new(&input_refs, exprs))
}

/// `(e0, e1, …)` — map outputs whose inputs are taken from `inputs`.
fn parse_output_tuple(lx: &mut Lexer, inputs: &[String]) -> Result<AffineMap, ParseError> {
    lx.expect_sym("(")?;
    let mut exprs = vec![parse_expr(lx)?];
    while lx.eat_sym(",") {
        exprs.push(parse_expr(lx)?);
    }
    lx.expect_sym(")")?;
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    Ok(AffineMap::new(&input_refs, exprs))
}

/// Parse a whole system description.
pub fn parse_system(src: &str) -> Result<System, ParseError> {
    let mut lx = lex(src)?;
    lx.expect_keyword("system")?;
    let _name = lx.expect_ident()?;
    lx.expect_sym("{")?;
    let mut params = vec![lx.expect_ident()?];
    while lx.eat_sym(",") {
        params.push(lx.expect_ident()?);
    }
    lx.expect_sym("}")?;
    let param_refs: Vec<&str> = params.iter().map(String::as_str).collect();
    let mut sys = System::new(&param_refs);

    while let Some(tok) = lx.peek().cloned() {
        match tok {
            Tok::Ident(kw) if kw == "var" => {
                lx.pos += 1;
                let name = lx.expect_ident()?;
                let dom = parse_domain(&mut lx)?;
                lx.expect_sym(";")?;
                sys.add_var(Var::new(&name, dom));
            }
            Tok::Ident(kw) if kw == "dep" || kw == "reduce" => {
                lx.pos += 1;
                let label = match lx.next() {
                    Some(Tok::Str(s)) => s,
                    other => return Err(lx.err(format!("expected label string, found {other:?}"))),
                };
                let first = lx.expect_ident()?;
                let is_reduce = kw == "reduce";
                if is_reduce {
                    lx.expect_sym("<-")?;
                } else {
                    lx.expect_sym("->")?;
                }
                let second = lx.expect_ident()?;
                for name in [&first, &second] {
                    if !sys.vars().any(|v| &v.name == name) {
                        return Err(lx.err(format!("unknown variable {name:?} in dependence")));
                    }
                }
                // map inputs = the enumeration side's indices
                let enum_var = if is_reduce { &second } else { &first };
                let enum_indices = sys
                    .vars()
                    .find(|v| &v.name == enum_var)
                    .ok_or_else(|| lx.err(format!("unknown variable {enum_var:?}")))?
                    .domain
                    .indices()
                    .to_vec();
                let map = parse_output_tuple(&mut lx, &enum_indices)?;
                let mut dep = if is_reduce {
                    Dependence::reduction_result(&label, &first, &second, map)
                } else {
                    Dependence::new(&label, &first, &second, map)
                };
                if matches!(lx.peek(), Some(Tok::Ident(w)) if w == "when") {
                    lx.pos += 1;
                    dep = dep.with_guard(parse_domain(&mut lx)?);
                }
                lx.expect_sym(";")?;
                sys.add_dep(dep);
            }
            Tok::Ident(kw) if kw == "schedule" => {
                lx.pos += 1;
                let name = lx.expect_ident()?;
                let map = parse_map(&mut lx)?;
                lx.expect_sym(";")?;
                sys.set_schedule(&name, Schedule::from_map(&map));
            }
            Tok::Ident(kw) if kw == "parallel" => {
                lx.pos += 1;
                match lx.next() {
                    Some(Tok::Int(d)) if d >= 0 => {
                        sys.set_parallel(d as usize);
                    }
                    other => {
                        return Err(lx.err(format!("expected dimension number, found {other:?}")))
                    }
                }
                lx.expect_sym(";")?;
            }
            other => {
                return Err(lx.err(format!(
                    "expected var/dep/reduce/schedule/parallel, found {other:?}"
                )))
            }
        }
    }
    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::env;

    const CHAIN: &str = r#"
        system Chain {N}
        var X {i | 0 <= i < N};
        dep "prev" X -> X (i - 1) when {i | i >= 1};
        schedule X (i -> i);
    "#;

    #[test]
    fn parses_and_verifies_a_chain() {
        let sys = parse_system(CHAIN).unwrap();
        assert!(sys.verify(&env(&[("N", 8)]), 8, 5).is_empty());
        assert_eq!(sys.dependence_instances(&env(&[("N", 8)]), 8), 7);
    }

    #[test]
    fn reversed_text_schedule_is_illegal() {
        let src = CHAIN.replace("(i -> i)", "(i -> 0 - i)");
        let sys = parse_system(&src).unwrap();
        assert!(!sys.verify(&env(&[("N", 8)]), 8, 5).is_empty());
    }

    #[test]
    fn chained_comparisons_expand() {
        let src = r#"
            system T {N}
            var F {i, j | 0 <= i <= j < N};
            schedule F (i, j -> j - i, i);
        "#;
        let sys = parse_system(src).unwrap();
        let dom = &sys.var("F").domain;
        let params = env(&[("N", 5)]);
        assert_eq!(dom.count(&[(-2, 7), (-2, 7)], &params), 15);
    }

    #[test]
    fn expressions_with_coefficients_and_parens() {
        let src = r#"
            system T {M}
            var X {i | 0 <= i < M};
            schedule X (i -> 3*i - (M - 1), 2*i + 4);
        "#;
        let sys = parse_system(src).unwrap();
        let t = sys.schedule("X").time(&[2], &env(&[("M", 10)]));
        assert_eq!(t, vec![6 - 9, 8]);
    }

    #[test]
    fn reduce_statement_builds_producer_enumerated_dep() {
        let src = r#"
            system R {N}
            var Acc {i, k | 0 <= i < N && 0 <= k < N};
            var Y {i | 0 <= i < N};
            reduce "Y consumes Acc" Y <- Acc (i);
            schedule Acc (i, k -> i, k);
            schedule Y (i -> i, N);
        "#;
        let sys = parse_system(src).unwrap();
        assert!(sys.verify(&env(&[("N", 4)]), 4, 5).is_empty());
        // moving Y before the body must fail
        let bad = src.replace("(i -> i, N)", "(i -> i, 0 - 1)");
        let sys = parse_system(&bad).unwrap();
        assert!(!sys.verify(&env(&[("N", 4)]), 4, 5).is_empty());
    }

    #[test]
    fn parallel_annotation_applies() {
        let src = r#"
            system P {N}
            var X {i | 0 <= i < N};
            dep "prev" X -> X (i - 1) when {i | i >= 1};
            schedule X (i -> i);
            parallel 0;
        "#;
        let sys = parse_system(src).unwrap();
        assert_eq!(sys.parallel_dims(), &[0]);
        // the chain over a parallel dim is a race
        assert!(!sys.verify(&env(&[("N", 4)]), 4, 5).is_empty());
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let src = r#"
            // a comment
            system C {N}  # another comment
            var X {i | 0 <= i < N}; // trailing
            schedule X (i -> i);
        "#;
        assert!(parse_system(src).is_ok());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_system("system X {N}\nvar {i};").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("identifier"));
        let err = parse_system("system X {N}\nvar Y {i | i >= };").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_system("bogus").unwrap_err();
        assert!(err.message.contains("system"));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = parse_system("system X {N}\nvar A {i};\ndep \"oops A -> A (i);").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unknown_dep_variable_is_an_error() {
        let err = parse_system("system X {N}\nvar A {i | 0 <= i < N};\ndep \"d\" A -> B (i);")
            .unwrap_err();
        assert!(err.message.contains("unknown variable \"B\""), "{err}");
    }

    /// The paper's double max-plus system, straight from text, verified
    /// against the same dependences as the hand-built one.
    #[test]
    fn textual_dmp_system_verifies() {
        let src = r#"
            system DMP {M, N}
            var F  {i1,j1,i2,j2 | 0 <= i1 <= j1 < M && 0 <= i2 <= j2 < N};
            var R0 {i1,j1,i2,j2,k1,k2 | 0 <= i1 <= k1 && k1 < j1 && j1 < M
                                      && 0 <= i2 <= k2 && k2 < j2 && j2 < N};
            dep "R0 reads left"  R0 -> F (i1, k1, i2, k2);
            dep "R0 reads right" R0 -> F (k1 + 1, j1, k2 + 1, j2);
            reduce "F consumes R0" F <- R0 (i1, j1, i2, j2);
            schedule F  (i1,j1,i2,j2 -> j1 - i1, i1, M + N, i2, j2, 0);
            schedule R0 (i1,j1,i2,j2,k1,k2 -> j1 - i1, i1, k1, i2, k2, j2);
        "#;
        let sys = parse_system(src).unwrap();
        for (m, n) in [(4i64, 4i64), (5, 3)] {
            let params = env(&[("M", m), ("N", n)]);
            let viol = sys.verify(&params, m.max(n), 5);
            assert!(viol.is_empty(), "{m}x{n}: {:?}", viol.first());
        }
    }
}
