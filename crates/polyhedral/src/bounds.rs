//! Static in-bounds certification of kernel access patterns.
//!
//! Where [`crate::verify_static`] proves *schedule legality* for all
//! parameter values, this module proves *memory safety*: every access a
//! kernel makes, modelled as an affine function of the iteration point,
//! lands inside the declared data region — for **all** sizes `M`, `N` and
//! tile shapes above a small floor. The machinery is the same exact-i128
//! Fourier–Motzkin pipeline: per access, per region constraint, we build
//! the *violation polyhedron* (iteration domain ∧ parameter floors ∧
//! ¬constraint) and certify it empty of integer points, or extract a
//! concrete integer witness of an out-of-bounds access.
//!
//! Negation follows `verify_static` exactly: `¬(e ≥ 0) ⟺ −e − 1 ≥ 0`,
//! `¬(e = 0) ⟺ (e ≥ 1) ∨ (−e ≥ 1)` (two polyhedra). An exhausted budget
//! yields the honest [`AccessVerdict::Unknown`], never "in-bounds".
//!
//! # What is and is not proven
//!
//! Triangular tables are addressed through quadratic layout formulas
//! (`row_start(i) = i·(2n−i+1)/2` for the packed map), which are not
//! affine and therefore outside Presburger arithmetic. The certificate is
//! split in two tiers:
//!
//! * **Tier 1 (this module, symbolic):** every *logical* access `(row,
//!   column)` or `(row, offset-in-row)` satisfies the region constraints
//!   (e.g. `0 ≤ i ≤ j < N`, or `0 ≤ off < N − i`) for all parameters.
//! * **Tier 2 (the layout lemma, exhaustive):** each concrete layout maps
//!   every logical triangle point to a distinct address below the storage
//!   length, and its row API returns slices covering exactly the row's
//!   `n − i` columns. This is validated by exhaustive property tests over
//!   bounded `n` (see `bpmax::bounds` and `tropical::triangular` tests)
//!   and recorded as a named assumption in the certificate.
//!
//! Together the tiers justify the `certified-unchecked` kernel path: a
//! Tier-1-certified logical access composed with a Tier-2-validated layout
//! cannot index out of bounds.

use crate::affine::{v, AffineExpr, Env};
use crate::domain::{Constraint, Domain};
use crate::presburger::{Assignment, Budget, Feasibility, LinExpr, Polyhedron};
use std::collections::BTreeMap;
use std::fmt;

/// Options for [`certify`].
#[derive(Clone, Debug)]
pub struct BoundsOptions {
    /// Parameters are constrained only by `param ≥ param_floor`.
    pub param_floor: i64,
    /// Resource limits for each emptiness query.
    pub budget: Budget,
}

impl Default for BoundsOptions {
    fn default() -> Self {
        BoundsOptions {
            param_floor: 1,
            budget: Budget::default(),
        }
    }
}

/// The data region an access's coordinates must land in.
#[derive(Clone, Debug)]
pub enum Region {
    /// Upper triangle `0 ≤ c₀ ≤ c₁ < n` (two coordinates).
    UpperTriangle {
        /// Side length (an affine expression in the parameters).
        n: AffineExpr,
    },
    /// Rectangular box `0 ≤ c_d < dims[d]` per coordinate.
    Box {
        /// Extent of each coordinate.
        dims: Vec<AffineExpr>,
    },
    /// Arbitrary conjunction. Constraints may mention the coordinate
    /// placeholders `@0`, `@1`, … (substituted with the access's
    /// coordinate expressions) alongside the kernel's iteration variables
    /// and parameters.
    Where {
        /// The conjunction, over `@d` placeholders, iteration variables
        /// and parameters.
        constraints: Vec<Constraint>,
    },
}

impl Region {
    /// The region as constraints over the `@d` coordinate placeholders.
    fn template(&self, arity: usize) -> Vec<Constraint> {
        match self {
            Region::UpperTriangle { n } => {
                assert_eq!(arity, 2, "UpperTriangle regions take two coordinates");
                vec![
                    Constraint::Ge0(v("@0")),
                    Constraint::Ge0(v("@1") - v("@0")),
                    Constraint::Ge0(n.clone() - v("@1") - 1),
                ]
            }
            Region::Box { dims } => {
                assert_eq!(arity, dims.len(), "Box region arity mismatch");
                let mut cs = Vec::with_capacity(2 * dims.len());
                for (d, dim) in dims.iter().enumerate() {
                    let c = v(format!("@{d}").as_str());
                    cs.push(Constraint::Ge0(c.clone()));
                    cs.push(Constraint::Ge0(dim.clone() - c - 1));
                }
                cs
            }
            Region::Where { constraints } => constraints.clone(),
        }
    }
}

/// One access a kernel makes: an affine coordinate function of the
/// iteration point, plus the region it must land in.
#[derive(Clone, Debug)]
pub struct AccessSpec {
    /// Human-readable label, e.g. `"B[k2+1, j2]"`.
    pub label: String,
    /// Logical coordinates as affine expressions over the kernel domain's
    /// iteration variables and the parameters.
    pub coords: Vec<AffineExpr>,
    /// Region the coordinates must satisfy.
    pub region: Region,
}

/// A kernel's iteration domain plus every access it performs.
#[derive(Clone, Debug)]
pub struct KernelSpec {
    /// Kernel name as surfaced in reports, e.g. `"r0_permuted"`.
    pub name: String,
    /// One-line description of the loop nest being modelled.
    pub doc: String,
    /// Size/tile parameter names (constrained to `≥ param_floor`).
    pub params: Vec<String>,
    /// Iteration domain (may mention the parameters).
    pub domain: Domain,
    /// The accesses.
    pub accesses: Vec<AccessSpec>,
    /// Tier-2 assumptions this certificate rests on (layout lemmas),
    /// named so the report is honest about its trusted base.
    pub assumptions: Vec<String>,
}

/// A concrete integer witness of an out-of-bounds access.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundsViolation {
    /// Label of the violating access.
    pub access: String,
    /// Display form of the violated region constraint.
    pub constraint: String,
    /// Parameter values at which the violation manifests.
    pub params: Env,
    /// The iteration point performing the access.
    pub point: Vec<i64>,
    /// The out-of-region coordinate values.
    pub coords: Vec<i64>,
}

impl fmt::Display for BoundsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<String> = self
            .params
            .iter()
            .map(|(k, val)| format!("{k}={val}"))
            .collect();
        write!(
            f,
            "{} violates `{}` at [{}]: point {:?} -> coords {:?}",
            self.access,
            self.constraint,
            params.join(", "),
            self.point,
            self.coords,
        )
    }
}

/// Outcome for one access.
#[derive(Clone, Debug, PartialEq)]
pub enum AccessVerdict {
    /// Every violation polyhedron is certified empty: the access is
    /// in-bounds for all parameter values above the floor.
    InBounds,
    /// A violation polyhedron contains the given integer point.
    OutOfBounds(BoundsViolation),
    /// Some violation set could not be certified empty within budget and
    /// no witness was found. Must be treated as "not proven in-bounds".
    Unknown {
        /// Which region constraint could not be decided.
        case: String,
    },
}

/// One access's report line.
#[derive(Clone, Debug)]
pub struct AccessReport {
    /// The access label.
    pub access: String,
    /// Outcome for this access.
    pub verdict: AccessVerdict,
    /// How many violation polyhedra were checked.
    pub cases: usize,
}

/// The bounds certificate for one kernel.
#[derive(Clone, Debug)]
pub struct BoundsCertificate {
    /// Kernel name.
    pub kernel: String,
    /// What the spec models.
    pub doc: String,
    /// One entry per access, in spec order.
    pub accesses: Vec<AccessReport>,
    /// Tier-2 assumptions (layout lemmas) the proof rests on.
    pub assumptions: Vec<String>,
}

impl BoundsCertificate {
    /// True when every access is certified in-bounds.
    #[must_use]
    pub fn is_in_bounds(&self) -> bool {
        self.accesses
            .iter()
            .all(|a| matches!(a.verdict, AccessVerdict::InBounds))
    }

    /// All concrete violations found.
    pub fn violations(&self) -> impl Iterator<Item = &BoundsViolation> {
        self.accesses.iter().filter_map(|a| match &a.verdict {
            AccessVerdict::OutOfBounds(w) => Some(w),
            _ => None,
        })
    }

    /// Total violation polyhedra certified or refuted.
    #[must_use]
    pub fn cases_checked(&self) -> usize {
        self.accesses.iter().map(|a| a.cases).sum()
    }
}

impl fmt::Display for BoundsCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {} — {}", self.kernel, self.doc)?;
        for a in &self.accesses {
            match &a.verdict {
                AccessVerdict::InBounds => {
                    writeln!(f, "  ok   {} ({} cases)", a.access, a.cases)?;
                }
                AccessVerdict::OutOfBounds(w) => writeln!(f, "  FAIL {w}")?,
                AccessVerdict::Unknown { case } => {
                    writeln!(f, "  ???  {} (undecided: {case})", a.access)?;
                }
            }
        }
        for assumption in &self.assumptions {
            writeln!(f, "  assumes {assumption}")?;
        }
        Ok(())
    }
}

/// Canonical variable name for an iteration index; `$` cannot occur in
/// parameter names, so no collision with params is possible.
fn canon(index: &str) -> String {
    format!("it${index}")
}

/// Certify every access of `spec` with default options.
#[must_use]
pub fn certify(spec: &KernelSpec) -> BoundsCertificate {
    certify_with(spec, &BoundsOptions::default())
}

/// Certify every access of `spec`: for each region constraint, the
/// violation polyhedron (domain ∧ floors ∧ ¬constraint) is decided by
/// exact Fourier–Motzkin. See the module docs for the two-tier story.
#[must_use]
pub fn certify_with(spec: &KernelSpec, opts: &BoundsOptions) -> BoundsCertificate {
    // Rename iteration indices to canonical variables so they can never
    // collide with parameter names (mirrors `verify_static`).
    let idx_subs: BTreeMap<String, AffineExpr> = spec
        .domain
        .indices()
        .iter()
        .map(|i| (i.clone(), v(&canon(i))))
        .collect();

    let mut base = Polyhedron::new();
    for c in spec.domain.constraints() {
        match c {
            Constraint::Ge0(e) => base.add_ge0(LinExpr::from(&e.substitute(&idx_subs))),
            Constraint::Eq0(e) => base.add_eq0(LinExpr::from(&e.substitute(&idx_subs))),
        }
    }
    for p in &spec.params {
        // param − floor ≥ 0.
        base.add_ge0(LinExpr::var(p).add(&LinExpr::constant(-i128::from(opts.param_floor))));
    }

    let mut accesses = Vec::with_capacity(spec.accesses.len());
    for access in &spec.accesses {
        accesses.push(certify_access(spec, access, &idx_subs, &base, opts));
    }
    BoundsCertificate {
        kernel: spec.name.clone(),
        doc: spec.doc.clone(),
        accesses,
        assumptions: spec.assumptions.clone(),
    }
}

fn certify_access(
    spec: &KernelSpec,
    access: &AccessSpec,
    idx_subs: &BTreeMap<String, AffineExpr>,
    base: &Polyhedron,
    opts: &BoundsOptions,
) -> AccessReport {
    // Coordinates over canonical iteration variables.
    let coords: Vec<AffineExpr> = access
        .coords
        .iter()
        .map(|e| e.substitute(idx_subs))
        .collect();
    // Region template constraints, with `@d` placeholders bound to the
    // coordinates and iteration variables canonicalized, all at once.
    let mut subs = idx_subs.clone();
    for (d, coord) in coords.iter().enumerate() {
        subs.insert(format!("@{d}"), coord.clone());
    }
    let template = access.region.template(coords.len());

    let mut cases = 0usize;
    let mut unknown: Option<String> = None;
    for raw in &template {
        let constraint = match raw {
            Constraint::Ge0(e) => Constraint::Ge0(e.substitute(&subs)),
            Constraint::Eq0(e) => Constraint::Eq0(e.substitute(&subs)),
        };
        // ¬(e ≥ 0) ⟺ −e − 1 ≥ 0;  ¬(e = 0) ⟺ (e ≥ 1) ∨ (−e ≥ 1).
        let negations: Vec<LinExpr> = match &constraint {
            Constraint::Ge0(e) => vec![LinExpr::from(e).scale(-1).add(&LinExpr::constant(-1))],
            Constraint::Eq0(e) => vec![
                LinExpr::from(e).add(&LinExpr::constant(-1)),
                LinExpr::from(e).scale(-1).add(&LinExpr::constant(-1)),
            ],
        };
        for neg in negations {
            cases += 1;
            let mut poly = base.clone();
            poly.add_ge0(neg);
            match poly.feasibility(&opts.budget) {
                Feasibility::Empty => {}
                Feasibility::Witness(w) => {
                    return AccessReport {
                        access: access.label.clone(),
                        verdict: AccessVerdict::OutOfBounds(violation(
                            spec, access, &coords, raw, &w,
                        )),
                        cases,
                    };
                }
                Feasibility::RationalOnly => {
                    unknown.get_or_insert(format!("{raw}"));
                }
            }
        }
    }
    AccessReport {
        access: access.label.clone(),
        verdict: match unknown {
            None => AccessVerdict::InBounds,
            Some(case) => AccessVerdict::Unknown { case },
        },
        cases,
    }
}

/// Turn a raw solver assignment into an oriented violation report.
fn violation(
    spec: &KernelSpec,
    access: &AccessSpec,
    coords: &[AffineExpr],
    constraint: &Constraint,
    witness: &Assignment,
) -> BoundsViolation {
    // The witness binds the polyhedron's variables; canonical index
    // variables absent from every constraint default to 0.
    let mut env: Env = witness.clone();
    for i in spec.domain.indices() {
        env.entry(canon(i)).or_insert(0);
    }
    let point: Vec<i64> = spec
        .domain
        .indices()
        .iter()
        .map(|i| env[&canon(i)])
        .collect();
    let coord_vals: Vec<i64> = coords.iter().map(|e| e.eval(&env)).collect();
    let params: Env = spec
        .params
        .iter()
        .map(|p| (p.clone(), *witness.get(p).expect("params are constrained"))) // lint: allow(expect): spec constructors constrain every parameter
        .collect();
    BoundsViolation {
        access: access.label.clone(),
        constraint: constraint.to_string(),
        params,
        point,
        coords: coord_vals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::c;

    /// The permuted R0 inner loop: for `0 ≤ i2 ≤ k2 ≤ N−2`,
    /// `k2+1 ≤ j2 < N`, read `A[i2,k2]`, `B[k2+1,j2]`, update `C[i2,j2]`.
    fn permuted_spec() -> KernelSpec {
        let domain = Domain::universe(&["i2", "k2", "j2"])
            .ge0(v("i2"))
            .ge0(v("k2") - v("i2"))
            .lt(v("k2"), v("N") - c(1))
            .ge0(v("j2") - v("k2") - c(1))
            .lt(v("j2"), v("N"));
        KernelSpec {
            name: "r0_permuted".into(),
            doc: "toy permuted max-plus".into(),
            params: vec!["N".into()],
            domain,
            accesses: vec![
                AccessSpec {
                    label: "A[i2,k2]".into(),
                    coords: vec![v("i2"), v("k2")],
                    region: Region::UpperTriangle { n: v("N") },
                },
                AccessSpec {
                    label: "B[k2+1,j2]".into(),
                    coords: vec![v("k2") + c(1), v("j2")],
                    region: Region::UpperTriangle { n: v("N") },
                },
                AccessSpec {
                    label: "C[i2,j2]".into(),
                    coords: vec![v("i2"), v("j2")],
                    region: Region::UpperTriangle { n: v("N") },
                },
            ],
            assumptions: vec!["layout lemma: packed row map".into()],
        }
    }

    #[test]
    fn permuted_accesses_are_in_bounds_for_all_n() {
        let cert = certify(&permuted_spec());
        assert!(cert.is_in_bounds(), "{cert}");
        assert!(cert.cases_checked() >= 9);
    }

    #[test]
    fn broken_access_yields_integer_witness() {
        // Deliberately break B's row: B[k2, j2+1] escapes at j2 = N−1.
        let mut spec = permuted_spec();
        spec.accesses[1] = AccessSpec {
            label: "B[k2,j2+1]".into(),
            coords: vec![v("k2"), v("j2") + c(1)],
            region: Region::UpperTriangle { n: v("N") },
        };
        let cert = certify(&spec);
        assert!(!cert.is_in_bounds());
        let w = cert.violations().next().expect("a violation");
        // Replay the witness numerically: the point is in-domain but the
        // coordinates violate the region.
        let mut env: Env = w.params.clone();
        for (i, val) in spec.domain.indices().iter().zip(&w.point) {
            env.insert(i.clone(), *val);
        }
        assert!(spec.domain.contains(&w.point, &w.params));
        let n = w.params["N"];
        let (r, col) = (w.coords[0], w.coords[1]);
        assert!(
            !(0 <= r && r <= col && col < n),
            "witness coords {:?} should be out of the triangle (N={n})",
            w.coords
        );
    }

    #[test]
    fn box_region_models_bounding_box_maps() {
        // Shifted option-2 map (i, j−i) into an N×N box over the triangle.
        let domain = Domain::universe(&["i", "j"])
            .ge0(v("i"))
            .ge0(v("j") - v("i"))
            .lt(v("j"), v("N"));
        let spec = KernelSpec {
            name: "memmap_shifted".into(),
            doc: "option-2 shifted map".into(),
            params: vec!["N".into()],
            domain,
            accesses: vec![AccessSpec {
                label: "(i, j-i)".into(),
                coords: vec![v("i"), v("j") - v("i")],
                region: Region::Box {
                    dims: vec![v("N"), v("N")],
                },
            }],
            assumptions: vec![],
        };
        let cert = certify(&spec);
        assert!(cert.is_in_bounds(), "{cert}");
    }

    #[test]
    fn where_region_expresses_row_relative_bounds() {
        // Packed row offset: off = j − i must satisfy 0 ≤ off < N − i.
        let domain = Domain::universe(&["i", "j"])
            .ge0(v("i"))
            .ge0(v("j") - v("i"))
            .lt(v("j"), v("N"));
        let good = KernelSpec {
            name: "packed_offset".into(),
            doc: "row-relative offset".into(),
            params: vec!["N".into()],
            domain: domain.clone(),
            accesses: vec![AccessSpec {
                label: "row[j-i]".into(),
                coords: vec![v("j") - v("i")],
                region: Region::Where {
                    constraints: vec![
                        Constraint::Ge0(v("@0")),
                        Constraint::Ge0(v("N") - v("i") - v("@0") - c(1)),
                    ],
                },
            }],
            assumptions: vec![],
        };
        assert!(certify(&good).is_in_bounds());

        // Off-by-one: row[j−i+1] overruns the row end at j = N−1.
        let bad = KernelSpec {
            accesses: vec![AccessSpec {
                label: "row[j-i+1]".into(),
                coords: vec![v("j") - v("i") + c(1)],
                region: Region::Where {
                    constraints: vec![
                        Constraint::Ge0(v("@0")),
                        Constraint::Ge0(v("N") - v("i") - v("@0") - c(1)),
                    ],
                },
            }],
            ..good
        };
        let cert = certify(&bad);
        let w = cert.violations().next().expect("overrun witness");
        // off = (N−1) − i + 1 = N − i ⟹ exactly one past the row end.
        assert_eq!(w.coords[0], w.params["N"] - w.point[0]);
    }

    #[test]
    fn certificate_display_lists_accesses_and_assumptions() {
        let cert = certify(&permuted_spec());
        let text = cert.to_string();
        assert!(text.contains("r0_permuted"), "{text}");
        assert!(text.contains("B[k2+1,j2]"), "{text}");
        assert!(text.contains("assumes layout lemma"), "{text}");
    }
}
