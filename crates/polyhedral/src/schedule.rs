//! Multidimensional schedules and lexicographic time.
//!
//! A schedule maps every instance of a variable to a point in a common
//! *d*-dimensional logical time; execution order is lexicographic on time
//! vectors. The paper's Tables I–V are exactly such maps, e.g. (Table III,
//! coarse grain, `R0`):
//!
//! ```text
//! (i1,j1,i2,j2,k1,k2) ↦ (1, j1-i1, i1, k1, i2, k2, j2)
//! ```
//!
//! Two extensions beyond plain affine maps are needed:
//!
//! * **Tiled dimensions** `⌊e/s⌋` — strip-mined time produced by the tiling
//!   transformation of Phase III (floor division is not affine, so it gets
//!   its own [`SchedDim`] variant; legality checking and the executor just
//!   evaluate it).
//! * **Parallel-dimension annotations** — `AlphaZ`'s `setParallel`: marking a
//!   schedule dimension as executed by concurrent threads. A dependence
//!   whose source and sink differ *only* at and after a parallel dimension
//!   is a race; the legality checker (see [`crate::dependence`]) treats
//!   parallel dimensions as providing no ordering.

use crate::affine::{AffineExpr, AffineMap, Env};
use std::cmp::Ordering;
use std::fmt;

/// One dimension of logical time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedDim {
    /// An affine expression of the indices/parameters.
    Affine(AffineExpr),
    /// A strip-mined dimension `⌊expr / size⌋` (`size ≥ 1`).
    Tiled {
        /// The expression being strip-mined.
        expr: AffineExpr,
        /// The tile size.
        size: i64,
    },
}

impl SchedDim {
    /// Evaluate to an integer time coordinate.
    pub fn eval(&self, env: &Env) -> i64 {
        match self {
            SchedDim::Affine(e) => e.eval(env),
            SchedDim::Tiled { expr, size } => {
                debug_assert!(*size >= 1, "tile size must be >= 1");
                expr.eval(env).div_euclid(*size)
            }
        }
    }
}

impl fmt::Display for SchedDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedDim::Affine(e) => write!(f, "{e}"),
            SchedDim::Tiled { expr, size } => write!(f, "floor(({expr})/{size})"),
        }
    }
}

/// A time vector (one lexicographic instant).
pub type TimeVec = Vec<i64>;

/// Lexicographic comparison of equal-length time vectors.
pub fn lex_cmp(a: &[i64], b: &[i64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len(), "comparing times of different dimension");
    a.cmp(b)
}

/// A schedule for one variable: input index names, time dimensions, and the
/// set of dimensions annotated parallel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    inputs: Vec<String>,
    dims: Vec<SchedDim>,
    parallel: Vec<usize>,
}

impl Schedule {
    /// Build from index names and time dimensions.
    pub fn new(inputs: &[&str], dims: Vec<SchedDim>) -> Self {
        Schedule {
            inputs: inputs.iter().map(ToString::to_string).collect(),
            dims,
            parallel: Vec::new(),
        }
    }

    /// Build from an [`AffineMap`] (every dimension affine).
    pub fn from_map(map: &AffineMap) -> Self {
        Schedule {
            inputs: map.inputs().to_vec(),
            dims: map.exprs().iter().cloned().map(SchedDim::Affine).collect(),
            parallel: Vec::new(),
        }
    }

    /// Convenience: affine schedule from index names and expressions.
    pub fn affine(inputs: &[&str], exprs: Vec<AffineExpr>) -> Self {
        Schedule::new(inputs, exprs.into_iter().map(SchedDim::Affine).collect())
    }

    /// Mark dimension `dim` as parallel (`AlphaZ` `setParallel`).
    pub fn with_parallel(mut self, dim: usize) -> Self {
        assert!(dim < self.dims.len(), "parallel dim out of range");
        if !self.parallel.contains(&dim) {
            self.parallel.push(dim);
            self.parallel.sort_unstable();
        }
        self
    }

    /// The parallel dimensions, ascending.
    pub fn parallel_dims(&self) -> &[usize] {
        &self.parallel
    }

    /// Input index names.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Time dimensionality.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// The time dimensions.
    pub fn dims(&self) -> &[SchedDim] {
        &self.dims
    }

    /// Time vector of `point` under `params`.
    pub fn time(&self, point: &[i64], params: &Env) -> TimeVec {
        assert_eq!(
            point.len(),
            self.inputs.len(),
            "point arity {} does not match schedule inputs {:?}",
            point.len(),
            self.inputs
        );
        let mut env = params.clone();
        for (name, &val) in self.inputs.iter().zip(point) {
            env.insert(name.clone(), val);
        }
        self.dims.iter().map(|d| d.eval(&env)).collect()
    }

    /// Whether time `a` provides a *sequential* happens-before guarantee
    /// over time `b`: `a <lex b` **and** the first differing dimension is
    /// not parallel (a parallel dimension provides no ordering between its
    /// iterations). Equal times never order.
    pub fn sequentially_before(&self, a: &[i64], b: &[i64]) -> bool {
        match a.iter().zip(b.iter()).position(|(x, y)| x != y) {
            None => false,
            Some(d) => a[d] < b[d] && !self.parallel.contains(&d),
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) -> (", self.inputs.join(", "))?;
        for (k, d) in self.dims.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
            if self.parallel.contains(&k) {
                write!(f, "‖")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{env, v};

    #[test]
    fn affine_schedule_time() {
        // (i1,j1) -> (j1-i1, i1)
        let s = Schedule::affine(&["i1", "j1"], vec![v("j1") - v("i1"), v("i1")]);
        assert_eq!(s.time(&[2, 5], &env(&[])), vec![3, 2]);
    }

    #[test]
    fn tiled_dim_floordiv() {
        let s = Schedule::new(
            &["i"],
            vec![
                SchedDim::Tiled {
                    expr: v("i"),
                    size: 4,
                },
                SchedDim::Affine(v("i")),
            ],
        );
        assert_eq!(s.time(&[0], &env(&[])), vec![0, 0]);
        assert_eq!(s.time(&[3], &env(&[])), vec![0, 3]);
        assert_eq!(s.time(&[4], &env(&[])), vec![1, 4]);
        // Euclidean floor for negatives
        assert_eq!(s.time(&[-1], &env(&[])), vec![-1, -1]);
    }

    #[test]
    fn lex_order() {
        assert_eq!(lex_cmp(&[1, 2, 3], &[1, 2, 4]), Ordering::Less);
        assert_eq!(lex_cmp(&[2, 0, 0], &[1, 9, 9]), Ordering::Greater);
        assert_eq!(lex_cmp(&[1, 1], &[1, 1]), Ordering::Equal);
    }

    #[test]
    fn parameters_in_schedule() {
        // The hybrid schedule of Table IV uses the parameter M as a time
        // coordinate: (i1,j1,i2,j2 -> 1, j1-i1, M, ...).
        let s = Schedule::affine(&["i1"], vec![v("M"), v("i1")]);
        assert_eq!(s.time(&[3], &env(&[("M", 16)])), vec![16, 3]);
    }

    #[test]
    fn sequential_ordering_respects_parallel_dims() {
        let s = Schedule::affine(&["i", "j"], vec![v("i"), v("j")]).with_parallel(1);
        // differ at dim 0 (sequential): ordered
        assert!(s.sequentially_before(&[0, 5], &[1, 0]));
        // differ first at dim 1 (parallel): NOT ordered
        assert!(!s.sequentially_before(&[0, 1], &[0, 2]));
        // equal: not ordered
        assert!(!s.sequentially_before(&[1, 1], &[1, 1]));
        // lex-greater: not ordered
        assert!(!s.sequentially_before(&[2, 0], &[1, 9]));
    }

    #[test]
    fn display_marks_parallel() {
        let s = Schedule::affine(&["i"], vec![v("i"), v("i") + 1]).with_parallel(0);
        let txt = s.to_string();
        assert!(txt.contains('‖'));
    }

    #[test]
    #[should_panic(expected = "parallel dim out of range")]
    fn parallel_oob_panics() {
        let _ = Schedule::affine(&["i"], vec![v("i")]).with_parallel(3);
    }
}
