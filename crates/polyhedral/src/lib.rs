//! A compact polyhedral-model substrate — the `AlphaZ` stand-in of the `BPMax`
//! reproduction.
//!
//! The paper's method is: write the `BPMax` recurrence as a system of affine
//! recurrence equations, then hand `AlphaZ` *mapping directives* — a
//! multidimensional affine **schedule** per variable (Tables I–V), a
//! **processor allocation** (which schedule dimension runs in parallel), a
//! **memory map**, and a **tiling** of the dominant reduction — and let the
//! tool generate C. The scientific content is in the directives: they must
//! be *legal* (respect every dependence) and they determine locality and
//! vectorizability.
//!
//! This crate reproduces that content in Rust:
//!
//! * [`affine`] — affine expressions and multi-dim affine maps over named
//!   index variables and size parameters.
//! * [`domain`] — polyhedral domains (conjunctions of affine inequalities):
//!   membership, bounded enumeration, emptiness-in-box.
//! * [`schedule`] — multidimensional schedules, including strip-mined
//!   (tiled) dimensions `⌊e/s⌋`, lexicographic time comparison, and
//!   parallel-dimension annotations.
//! * [`dependence`] — variables, affine dependences, and whole systems;
//!   **exhaustive legality verification**: every dependence instance must
//!   have its producer scheduled strictly lexicographically before its
//!   consumer (checked over scaled problem instances, with violation
//!   witnesses).
//! * [`presburger`] — linear integer constraint systems decided by exact
//!   rational Fourier–Motzkin elimination with integer tightening and a
//!   backtracking integer-witness search.
//! * [`verify_static`] — **symbolic legality verification**: per
//!   dependence, the set of schedule-violating instances is encoded as
//!   integer polyhedra over the iteration indices *and the size
//!   parameters*, and certified empty for all parameter values at once
//!   (or refuted with a concrete integer witness).
//! * [`tiling`] — strip-mining transformations on schedules and the loop
//!   range helpers the hand-materialized kernels share.
//! * [`codegen`] — textual loop-nest generation from (domain, schedule)
//!   pairs plus the LOC metric of the paper's Table VI.
//! * [`parser`] — a miniature Alpha-like surface syntax: systems,
//!   domains, dependences and schedules as text (the shape of the paper's
//!   "alphabets" programs and command scripts).
//! * [`scangen`] — automatic scan-loop generation from a (domain,
//!   schedule) pair for signed-permutation schedules (`AlphaZ`'s
//!   `generateScheduleC`, restricted to the class Tables I–V use per
//!   variable); generated nests are proven to visit instances in exactly
//!   the executor's order.
//! * [`executor`] — an interpreter that runs a system's statements in
//!   schedule order (used by tests to execute `BPMax` straight from the
//!   encoded paper schedules) and can emit memory-access traces for the
//!   cache simulator in the `machine` crate.
//!
//! The deliberate scope cut (mirroring the paper, where a human writes the
//! schedules): there is no automatic scheduler. We verify and apply mapping
//! directives; we do not search for them.
//!
//! # Example: verify a schedule from text
//!
//! ```
//! use polyhedral::parser::parse_system;
//! use polyhedral::affine::env;
//!
//! let sys = parse_system(r#"
//!     system Chain {N}
//!     var X {i | 0 <= i < N};
//!     dep "prev" X -> X (i - 1) when {i | i >= 1};
//!     schedule X (i -> i);
//! "#).unwrap();
//! assert!(sys.verify(&env(&[("N", 10)]), 10, 5).is_empty());
//!
//! // the reversed order violates the chain dependence
//! let bad = parse_system(r#"
//!     system Chain {N}
//!     var X {i | 0 <= i < N};
//!     dep "prev" X -> X (i - 1) when {i | i >= 1};
//!     schedule X (i -> 0 - i);
//! "#).unwrap();
//! assert!(!bad.verify(&env(&[("N", 10)]), 10, 5).is_empty());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod bounds;
pub mod codegen;
pub mod dependence;
pub mod domain;
pub mod executor;
pub mod parser;
pub mod presburger;
pub mod scangen;
pub mod schedule;
pub mod tiling;
pub mod verify_static;

pub use affine::{AffineExpr, AffineMap, Env};
pub use bounds::{
    AccessReport, AccessSpec, AccessVerdict, BoundsCertificate, BoundsOptions, BoundsViolation,
    KernelSpec, Region,
};
pub use dependence::{Dependence, System, Var, Violation};
pub use domain::{Constraint, Domain};
pub use presburger::{Assignment, Budget, Feasibility, LinExpr, Polyhedron};
pub use schedule::{SchedDim, Schedule, TimeVec};
pub use verify_static::{
    StaticOptions, StaticReport, StaticVerdict, StaticViolation, StaticViolationKind,
};
