//! Schedule-order execution and memory-access traces.
//!
//! The executor *interprets* a [`System`]: it enumerates every instance of
//! every scheduled variable, sorts them by lexicographic time (ties broken
//! by statement registration order, like textual statement order inside a
//! loop body), and invokes user statements in that order. The `bpmax` test
//! suite uses this to run small `BPMax` instances **directly from the encoded
//! paper schedules** and compare against the reference implementation —
//! proving the Tables I–V transcriptions are not just legal but compute the
//! right thing.
//!
//! [`MemMap`] (`AlphaZ` `setMemoryMap`) turns instance points into linear
//! addresses so an execution can emit a memory-access [`Trace`] for the
//! cache simulator in the `machine` crate — the tool we use to reproduce
//! the paper's locality arguments (coarse-grain DRAM-boundedness, Fig 10's
//! option-1 vs option-2 memory maps).

use crate::affine::{AffineMap, Env};
use crate::dependence::System;
use crate::schedule::TimeVec;

/// One scheduled statement instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Variable name.
    pub var: String,
    /// Iteration point.
    pub point: Vec<i64>,
    /// Time vector under the variable's schedule.
    pub time: TimeVec,
}

/// Enumerate all instances of the system's variables (those with a
/// schedule) in execution order. `index_bound` bounds the enumeration box
/// per index dimension (half-open, lower bound 0).
pub fn ordered_instances(system: &System, params: &Env, index_bound: i64) -> Vec<Instance> {
    let mut all: Vec<(usize, Instance)> = Vec::new();
    for (ord, var) in system.vars().enumerate() {
        let sched = system.schedule(&var.name);
        let box_: Vec<(i64, i64)> = vec![(0, index_bound); var.domain.dim()];
        for point in var.domain.enumerate(&box_, params) {
            let time = sched.time(&point, params);
            all.push((
                ord,
                Instance {
                    var: var.name.clone(),
                    point,
                    time,
                },
            ));
        }
    }
    all.sort_by(|(oa, a), (ob, b)| {
        a.time
            .cmp(&b.time)
            .then(oa.cmp(ob))
            .then(a.point.cmp(&b.point))
    });
    all.into_iter().map(|(_, i)| i).collect()
}

/// Run the system: invoke `stmt(var_name, point)` for every instance in
/// schedule order.
pub fn run(system: &System, params: &Env, index_bound: i64, stmt: &mut impl FnMut(&str, &[i64])) {
    for inst in ordered_instances(system, params, index_bound) {
        stmt(&inst.var, &inst.point);
    }
}

/// An affine memory map: data point ↦ linear address
/// `base + Σ coordᵢ · strideᵢ` where `coord = map(point)`.
#[derive(Clone, Debug)]
pub struct MemMap {
    /// Map from iteration/data indices to storage coordinates.
    pub map: AffineMap,
    /// Stride (in elements) per storage coordinate.
    pub strides: Vec<i64>,
    /// Base offset (in elements).
    pub base: i64,
}

impl MemMap {
    /// Build a map; `strides.len()` must match the map's output arity.
    pub fn new(map: AffineMap, strides: Vec<i64>, base: i64) -> Self {
        assert_eq!(map.out_dim(), strides.len(), "stride arity mismatch");
        MemMap { map, strides, base }
    }

    /// Row-major map over `dims` (sizes of each storage coordinate).
    pub fn row_major(map: AffineMap, dims: &[i64]) -> Self {
        assert_eq!(map.out_dim(), dims.len());
        let mut strides = vec![1i64; dims.len()];
        for d in (0..dims.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * dims[d + 1];
        }
        MemMap {
            map,
            strides,
            base: 0,
        }
    }

    /// Linear address of `point`.
    pub fn addr(&self, point: &[i64], params: &Env) -> i64 {
        debug_assert_eq!(
            point.len(),
            self.map.inputs().len(),
            "point arity does not match the memory map's inputs"
        );
        let coords = self.map.eval_point(point, params);
        debug_assert_eq!(coords.len(), self.strides.len());
        let addr = self.base
            + coords
                .iter()
                .zip(&self.strides)
                .map(|(c, s)| c * s)
                .sum::<i64>();
        debug_assert!(
            addr >= 0,
            "memory map sent {point:?} to negative address {addr}"
        );
        addr
    }
}

/// Kind of a traced access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One traced memory access (element-granular; the cache simulator applies
/// the element size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Linear element address.
    pub addr: i64,
    /// Read or write.
    pub kind: AccessKind,
}

/// A memory-access trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    accesses: Vec<Access>,
}

impl Trace {
    /// New empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Record a read of `addr`.
    pub fn read(&mut self, addr: i64) {
        self.accesses.push(Access {
            addr,
            kind: AccessKind::Read,
        });
    }

    /// Record a write of `addr`.
    pub fn write(&mut self, addr: i64) {
        self.accesses.push(Access {
            addr,
            kind: AccessKind::Write,
        });
    }

    /// The recorded accesses, in order.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Count of distinct addresses (the working set, in elements).
    pub fn distinct_addrs(&self) -> usize {
        let mut a: Vec<i64> = self.accesses.iter().map(|x| x.addr).collect();
        a.sort_unstable();
        a.dedup();
        a.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{env, v, AffineMap};
    use crate::dependence::{Dependence, Var};
    use crate::domain::Domain;
    use crate::schedule::Schedule;

    /// The paper's Listing 1 (prefix sum) as a system: sum[i] = Σ_{j≤i} a[j]
    /// modelled as S over (i, j) accumulation instances.
    fn prefix_sum_system() -> System {
        let mut sys = System::new(&["N"]);
        sys.add_var(Var::new(
            "S",
            Domain::universe(&["i", "j"])
                .ge0(v("j"))
                .ge0(v("i") - v("j"))
                .lt(v("i"), v("N")),
        ));
        // accumulation order: S[i,j] reads S[i,j-1]
        sys.add_dep(
            Dependence::new(
                "acc",
                "S",
                "S",
                AffineMap::new(&["i", "j"], vec![v("i"), v("j") - 1]),
            )
            .with_guard(Domain::universe(&["i", "j"]).ge0(v("j") - 1)),
        );
        sys.set_schedule("S", Schedule::affine(&["i", "j"], vec![v("i"), v("j")]));
        sys
    }

    #[test]
    fn prefix_sum_executes_correctly() {
        let sys = prefix_sum_system();
        let params = env(&[("N", 7)]);
        assert!(sys.verify(&params, 7, 5).is_empty());
        let a: Vec<i64> = (0..7).map(|x| x * x + 1).collect();
        let mut sums = vec![0i64; 7];
        run(&sys, &params, 7, &mut |var, pt| {
            assert_eq!(var, "S");
            let (i, j) = (pt[0] as usize, pt[1] as usize);
            if j == 0 {
                sums[i] = a[0];
            } else {
                sums[i] += a[j];
            }
        });
        let mut expect = vec![0i64; 7];
        let mut acc = 0;
        for (i, &x) in a.iter().enumerate() {
            acc += x;
            expect[i] = acc;
        }
        assert_eq!(sums, expect);
    }

    #[test]
    fn instances_are_time_sorted() {
        let sys = prefix_sum_system();
        let params = env(&[("N", 5)]);
        let insts = ordered_instances(&sys, &params, 5);
        assert_eq!(insts.len(), 15);
        for w in insts.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn two_variable_interleaving_by_time() {
        // A at time (i, 0), B at time (i, 1): for each i, A before B.
        let mut sys = System::new(&["N"]);
        let dom = Domain::universe(&["i"]).ge0(v("i")).lt(v("i"), v("N"));
        sys.add_var(Var::new("A", dom.clone()));
        sys.add_var(Var::new("B", dom));
        sys.set_schedule(
            "A",
            Schedule::affine(&["i"], vec![v("i"), crate::affine::c(0)]),
        );
        sys.set_schedule(
            "B",
            Schedule::affine(&["i"], vec![v("i"), crate::affine::c(1)]),
        );
        let mut log = Vec::new();
        run(&sys, &env(&[("N", 3)]), 3, &mut |var, pt| {
            log.push(format!("{var}{}", pt[0]));
        });
        assert_eq!(log, vec!["A0", "B0", "A1", "B1", "A2", "B2"]);
    }

    #[test]
    fn memmap_row_major() {
        // (i, j) ↦ i·8 + j
        let m = MemMap::row_major(AffineMap::identity(&["i", "j"]), &[4, 8]);
        assert_eq!(m.addr(&[0, 0], &env(&[])), 0);
        assert_eq!(m.addr(&[2, 3], &env(&[])), 19);
    }

    #[test]
    fn memmap_shifted_option2() {
        // The paper's option 2: (i, j) ↦ (i, j - i), row length 8.
        let m = MemMap::row_major(
            AffineMap::new(&["i", "j"], vec![v("i"), v("j") - v("i")]),
            &[8, 8],
        );
        assert_eq!(m.addr(&[3, 3], &env(&[])), 24);
        assert_eq!(m.addr(&[3, 7], &env(&[])), 28);
    }

    #[test]
    fn trace_counts_and_working_set() {
        let mut t = Trace::new();
        t.read(10);
        t.write(10);
        t.read(20);
        assert_eq!(t.len(), 3);
        assert_eq!(t.distinct_addrs(), 2);
        assert_eq!(t.accesses()[1].kind, AccessKind::Write);
    }

    #[test]
    #[should_panic(expected = "stride arity mismatch")]
    fn memmap_arity_checked() {
        let _ = MemMap::new(AffineMap::identity(&["i"]), vec![1, 2], 0);
    }
}
