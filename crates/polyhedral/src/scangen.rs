//! Automatic scan-loop generation from a (domain, schedule) pair.
//!
//! `generateScheduleC` in `AlphaZ` turns a scheduled variable into loops over
//! its time dimensions. This module implements the core of that for the
//! schedule class the `BPMax` tables actually use — each time dimension is
//! either a constant, a parameter expression, or `±index + const`, with
//! every index variable covered by some dimension (a signed permutation
//! with offsets; repeated occurrences are order-neutral and skipped).
//! That covers the lexicographic (non-diagonal) walks of Tables I–V —
//! diagonal-major walks like `(j1−i1, i1, …)` need a skewing change of
//! basis first and are rejected explicitly.
//!
//! The generated [`LoopNest`] iterates the time dimensions in order
//! (negated indices become ascending loops over the negated range), binds
//! the original index names back via affine substitution, guards with the
//! domain constraints, and emits one statement per instance. Tests prove
//! the nest visits exactly the instances of
//! [`crate::executor::ordered_instances`], **in the same order** — the
//! generated text is the schedule, not an approximation of it.

use crate::affine::{AffineExpr, Env};
use crate::codegen::{Bound, LoopNest, Node};
use crate::domain::{Constraint, Domain};
use crate::schedule::{SchedDim, Schedule};
use std::collections::BTreeMap;

/// Why a schedule cannot be scanned by this generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanError {
    /// A time dimension mentions several index variables (e.g. `j1 − i1`)
    /// or a non-unit coefficient — outside the signed-permutation class.
    NonPermutationDim(usize),
    /// An index variable appears in no time dimension (the schedule is not
    /// injective on the domain, so a scan would need an inner search).
    UnscannedIndex(String),
    /// A tiled dimension (strip-mined schedules need the tile-loop
    /// generator of `nests`, not this plain scan).
    TiledDim(usize),
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::NonPermutationDim(d) => {
                write!(f, "time dimension {d} is not ±index + const")
            }
            ScanError::UnscannedIndex(v) => write!(f, "index {v:?} not covered by any dimension"),
            ScanError::TiledDim(d) => write!(f, "dimension {d} is strip-mined"),
        }
    }
}

/// Generate a scan nest for `stmt` over `domain` in `schedule` order.
///
/// `index_bound`: expression for the half-open upper bound of every index
/// variable (e.g. `v("M") + v("N")` for `BPMax` — the same box the verifier
/// uses); lower bound is `lo_bound` (typically a small negative constant
/// or 0). Domain constraints guard the statement, so a loose box only
/// costs scan time, never correctness.
pub fn generate_scan(
    stmt: &str,
    domain: &Domain,
    schedule: &Schedule,
    lo_bound: AffineExpr,
    hi_bound: AffineExpr,
) -> Result<LoopNest, ScanError> {
    assert_eq!(
        domain.indices(),
        schedule.inputs(),
        "domain and schedule must agree on index names"
    );
    // Classify each time dimension.
    let mut covered: BTreeMap<String, usize> = BTreeMap::new();
    enum DimKind {
        Fixed,                             // constant / parameter expression
        Index { name: String, neg: bool }, // ±name + const
    }
    let mut kinds = Vec::new();
    for (d, dim) in schedule.dims().iter().enumerate() {
        let expr = match dim {
            SchedDim::Affine(e) => e,
            SchedDim::Tiled { .. } => return Err(ScanError::TiledDim(d)),
        };
        let index_vars: Vec<&str> = expr
            .vars()
            .filter(|v| domain.indices().iter().any(|i| i == v))
            .collect();
        match index_vars.as_slice() {
            [] => kinds.push(DimKind::Fixed),
            [one] => {
                let coeff = expr.coeff(one);
                if coeff != 1 && coeff != -1 {
                    return Err(ScanError::NonPermutationDim(d));
                }
                let name = one.to_string();
                if covered.contains_key(&name) {
                    // A repeated index (e.g. the fine-grain F schedule's
                    // `…, j1, j1, …`) can never be the *first* differing
                    // dimension — its first occurrence already differs —
                    // so it is order-neutral here: skip it.
                    kinds.push(DimKind::Fixed);
                } else {
                    covered.insert(name.clone(), d);
                    kinds.push(DimKind::Index {
                        name,
                        neg: coeff == -1,
                    });
                }
            }
            _ => return Err(ScanError::NonPermutationDim(d)),
        }
    }
    for idx in domain.indices() {
        if !covered.contains_key(idx) {
            return Err(ScanError::UnscannedIndex(idx.clone()));
        }
    }
    // Build loops outermost-first. Loop variable for dimension d is a
    // fresh name `t{d}`; the original index is recovered as ±t{d}
    // (constant offsets in the dim expression shift the loop range, which
    // the loose box + guards absorb — we simply scan the index box).
    let mut subs: BTreeMap<String, AffineExpr> = BTreeMap::new();
    let mut loops: Vec<(String, bool, bool)> = Vec::new(); // (index, neg, is_loop)
    for (d, kind) in kinds.iter().enumerate() {
        if let DimKind::Index { name, neg } = kind {
            let tvar = format!("t{d}");
            let recover = if *neg {
                -AffineExpr::var(&tvar)
            } else {
                AffineExpr::var(&tvar)
            };
            subs.insert(name.clone(), recover);
            loops.push((tvar, *neg, true));
        }
    }
    // Statement: original indices substituted, guarded by the domain.
    let args: Vec<AffineExpr> = domain
        .indices()
        .iter()
        .map(|i| AffineExpr::var(i).substitute(&subs))
        .collect();
    let guards: Vec<AffineExpr> = domain
        .constraints()
        .iter()
        .flat_map(|c| match c {
            Constraint::Ge0(e) => vec![e.substitute(&subs)],
            Constraint::Eq0(e) => vec![e.substitute(&subs), -e.substitute(&subs)],
        })
        .collect();
    let mut body = vec![Node::stmt_if(stmt, args, guards)];
    // Wrap loops inside-out. A negated index i (time = -i) must scan i
    // descending, i.e. t ascending over [-(hi-1), -lo+1) with i = -t.
    for (tvar, neg, _) in loops.into_iter().rev() {
        let (lo, hi) = if neg {
            (-(hi_bound.clone()) + 1, -(lo_bound.clone()) + 1)
        } else {
            (lo_bound.clone(), hi_bound.clone())
        };
        body = vec![Node::loop_(&tvar, Bound::expr(lo), Bound::expr(hi), body)];
    }
    Ok(LoopNest::new(&format!("scan of {stmt}"), &[], body))
}

/// Execute a generated scan and collect visited instances, for comparison
/// against the executor.
pub fn collect_instances(nest: &LoopNest, params: &Env) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    nest.execute(params, &mut |_, args| out.push(args.to_vec()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{c, env, v};
    use crate::dependence::{System, Var};
    use crate::executor::ordered_instances;

    fn triangle() -> Domain {
        Domain::universe(&["i", "j"])
            .ge0(v("i"))
            .ge0(v("j") - v("i"))
            .lt(v("j"), v("N"))
    }

    /// Compare the generated scan against the executor on a one-variable
    /// system: same instances, same order.
    fn check(domain: Domain, schedule: Schedule, params: &Env, bound: i64) {
        let nest = generate_scan(
            "S",
            &domain,
            &schedule,
            c(-bound),
            v("N") + v("N"), // loose box
        )
        .unwrap();
        let scanned = collect_instances(&nest, params);
        let mut sys = System::new(&["N"]);
        sys.add_var(Var::new("S", domain));
        sys.set_schedule("S", schedule);
        let expected: Vec<Vec<i64>> = ordered_instances(&sys, params, bound)
            .into_iter()
            .map(|inst| inst.point)
            .collect();
        assert_eq!(scanned, expected);
    }

    #[test]
    fn identity_order() {
        check(
            triangle(),
            Schedule::affine(&["i", "j"], vec![v("i"), v("j")]),
            &env(&[("N", 6)]),
            6,
        );
    }

    #[test]
    fn column_major_order() {
        check(
            triangle(),
            Schedule::affine(&["i", "j"], vec![v("j"), v("i")]),
            &env(&[("N", 5)]),
            5,
        );
    }

    #[test]
    fn bottom_up_order() {
        // (-i, j): rows bottom-up, the BPMax fine-grain walk.
        check(
            triangle(),
            Schedule::affine(&["i", "j"], vec![-v("i"), v("j")]),
            &env(&[("N", 7)]),
            7,
        );
    }

    #[test]
    fn offsets_are_tolerated() {
        check(
            triangle(),
            Schedule::affine(&["i", "j"], vec![v("i") + 3, v("j") - 2]),
            &env(&[("N", 5)]),
            5,
        );
    }

    #[test]
    fn fixed_dims_are_skipped() {
        check(
            triangle(),
            Schedule::affine(&["i", "j"], vec![c(1), v("i"), v("N"), v("j")]),
            &env(&[("N", 5)]),
            5,
        );
    }

    #[test]
    fn diagonal_schedules_are_rejected() {
        let err = generate_scan(
            "S",
            &triangle(),
            &Schedule::affine(&["i", "j"], vec![v("j") - v("i"), v("i")]),
            c(0),
            v("N"),
        )
        .unwrap_err();
        assert_eq!(err, ScanError::NonPermutationDim(0));
    }

    #[test]
    fn uncovered_index_rejected() {
        let err = generate_scan(
            "S",
            &triangle(),
            &Schedule::affine(&["i", "j"], vec![v("i"), c(0)]),
            c(0),
            v("N"),
        )
        .unwrap_err();
        assert_eq!(err, ScanError::UnscannedIndex("j".to_string()));
    }

    #[test]
    fn duplicate_index_dims_are_order_neutral() {
        // `(i, i, j)` orders exactly like `(i, j)`.
        check(
            triangle(),
            Schedule::affine(&["i", "j"], vec![v("i"), v("i"), v("j")]),
            &env(&[("N", 5)]),
            5,
        );
    }

    #[test]
    fn fine_grain_f_style_schedule_is_scannable() {
        // The shape of Table II's F schedule: (1, -i1, j1, j1, -i2, 0, j2, 0)
        // reduced to one strand: (1, -i, j, j, 0).
        check(
            triangle(),
            Schedule::affine(&["i", "j"], vec![c(1), -v("i"), v("j"), v("j"), c(0)]),
            &env(&[("N", 6)]),
            6,
        );
    }

    #[test]
    fn rendered_text_is_loops_and_guards() {
        let nest = generate_scan(
            "S",
            &triangle(),
            &Schedule::affine(&["i", "j"], vec![-v("i"), v("j")]),
            c(0),
            v("N"),
        )
        .unwrap();
        let text = crate::codegen::render(&nest);
        assert!(text.contains("for (t0"));
        assert!(text.contains("if ("));
        assert!(text.contains("S("));
    }
}
