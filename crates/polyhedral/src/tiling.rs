//! Tiling transformations.
//!
//! Phase III of the paper tiles the three inner dimensions of the double
//! max-plus reduction ("we tile three inner dimensions with k2 loop still
//! in the middle and j2 loop inside"). In schedule terms, tiling =
//! *strip-mining* a band of schedule dimensions: each banded dimension `e`
//! contributes an outer tile coordinate `⌊e/s⌋`, and the original
//! dimensions remain inside as point coordinates. Legality of the tiled
//! schedule is rechecked by [`crate::dependence::System::verify`] like any
//! other schedule — tiling is only valid when the band is fully permutable,
//! and an illegal band produces witnesses.
//!
//! Also provides [`tile_ranges`], the iterator every hand-materialized
//! tiled kernel in the workspace uses to chop `[lo, hi)` into `[t, t+size)`
//! chunks, so tile-boundary arithmetic lives in exactly one place.

use crate::schedule::{SchedDim, Schedule};

/// Strip-mine the schedule dimensions `band` (indices into the existing
/// time dims, in the order they should appear as tile coordinates) with the
/// given tile `sizes`. The tile coordinates are inserted as a block
/// *before* the first banded dimension; all original dimensions keep their
/// relative order after it.
///
/// Example: dims `(a, b, c)`, band `[1, 2]`, sizes `[4, 8]` →
/// `(a, ⌊b/4⌋, ⌊c/8⌋, b, c)`.
///
/// Panics if a banded dimension is already tiled or out of range, or if
/// `band` and `sizes` lengths differ.
pub fn strip_mine(schedule: &Schedule, band: &[usize], sizes: &[i64]) -> Schedule {
    assert_eq!(band.len(), sizes.len(), "band/sizes length mismatch");
    assert!(!band.is_empty(), "empty tiling band");
    let dims = schedule.dims();
    let first = *band.iter().min().unwrap(); // lint: allow(unwrap): band verified non-empty above
    assert!(
        band.iter().all(|&d| d < dims.len()),
        "band dimension out of range"
    );
    let mut tile_dims = Vec::with_capacity(band.len());
    for (&d, &s) in band.iter().zip(sizes) {
        assert!(s >= 1, "tile size must be >= 1");
        match &dims[d] {
            SchedDim::Affine(e) => tile_dims.push(SchedDim::Tiled {
                expr: e.clone(),
                size: s,
            }),
            SchedDim::Tiled { .. } => panic!("dimension {d} is already tiled"), // lint: allow(panic): double-tiling a dim is a caller bug
        }
    }
    let mut new_dims = Vec::with_capacity(dims.len() + band.len());
    new_dims.extend(dims[..first].iter().cloned());
    new_dims.extend(tile_dims);
    new_dims.extend(dims[first..].iter().cloned());
    let inputs: Vec<&str> = schedule.inputs().iter().map(String::as_str).collect();
    Schedule::new(&inputs, new_dims)
}

/// Iterator over tile ranges `[start, end)` covering `[lo, hi)` in steps of
/// `size` (the last range may be short). `size = usize::MAX` yields the
/// whole range at once (an *untiled* dimension — the paper's best choice
/// for the streaming `j2` loop).
pub fn tile_ranges(lo: usize, hi: usize, size: usize) -> impl Iterator<Item = (usize, usize)> {
    assert!(size > 0, "tile size must be positive");
    let mut start = lo;
    std::iter::from_fn(move || {
        if start >= hi {
            return None;
        }
        let end = start.saturating_add(size).min(hi);
        let r = (start, end);
        start = end;
        Some(r)
    })
}

/// Number of tiles covering `[lo, hi)` with the given size.
pub fn tile_count(lo: usize, hi: usize, size: usize) -> usize {
    if hi <= lo {
        0
    } else if size == usize::MAX {
        1
    } else {
        (hi - lo).div_ceil(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{env, v};

    #[test]
    fn strip_mine_inserts_tile_block() {
        let s = Schedule::affine(&["i", "j", "k"], vec![v("i"), v("j"), v("k")]);
        let t = strip_mine(&s, &[1, 2], &[4, 8]);
        assert_eq!(t.dim(), 5);
        // point (0, 5, 17) → (0, ⌊5/4⌋, ⌊17/8⌋, 5, 17)
        assert_eq!(t.time(&[0, 5, 17], &env(&[])), vec![0, 1, 2, 5, 17]);
    }

    #[test]
    fn strip_mine_respects_band_order() {
        let s = Schedule::affine(&["i", "j"], vec![v("i"), v("j")]);
        // band listed (1, 0): tile coords in that order, inserted at dim 0
        let t = strip_mine(&s, &[1, 0], &[10, 2]);
        assert_eq!(t.time(&[3, 25], &env(&[])), vec![2, 1, 3, 25]);
    }

    #[test]
    fn tiled_schedule_orders_tiles_lexicographically() {
        let s = Schedule::affine(&["i"], vec![v("i")]);
        let t = strip_mine(&s, &[0], &[4]);
        let params = env(&[]);
        // i=3 (tile 0) before i=4 (tile 1); within a tile original order.
        assert!(t.time(&[3], &params) < t.time(&[4], &params));
        assert!(t.time(&[4], &params) < t.time(&[5], &params));
    }

    #[test]
    #[should_panic(expected = "already tiled")]
    fn double_tiling_panics() {
        let s = Schedule::affine(&["i"], vec![v("i")]);
        let t = strip_mine(&s, &[0], &[4]);
        let _ = strip_mine(&t, &[0], &[2]);
    }

    #[test]
    fn tile_ranges_cover_exactly() {
        let ranges: Vec<_> = tile_ranges(3, 17, 5).collect();
        assert_eq!(ranges, vec![(3, 8), (8, 13), (13, 17)]);
        // untiled
        let ranges: Vec<_> = tile_ranges(0, 9, usize::MAX).collect();
        assert_eq!(ranges, vec![(0, 9)]);
        // empty
        assert_eq!(tile_ranges(5, 5, 3).count(), 0);
    }

    #[test]
    fn tile_count_matches_ranges() {
        for (lo, hi, s) in [
            (0usize, 10usize, 3usize),
            (2, 17, 4),
            (0, 0, 5),
            (0, 8, usize::MAX),
        ] {
            assert_eq!(tile_count(lo, hi, s), tile_ranges(lo, hi, s).count());
        }
    }

    #[test]
    fn ranges_partition_without_overlap() {
        let mut covered = [false; 23];
        for (a, b) in tile_ranges(0, 23, 7) {
            for cell in &mut covered[a..b] {
                assert!(!*cell);
                *cell = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }
}
