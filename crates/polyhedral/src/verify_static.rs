//! Symbolic (parameter-free) schedule legality: prove, for **all** values
//! of the size parameters above a small floor, that every dependence is
//! scheduled producer-strictly-before-consumer and that no first-differing
//! time dimension is marked parallel.
//!
//! Where [`System::verify`] enumerates dependence instances at fixed
//! sizes, [`System::verify_static`] builds, per dependence, a family of
//! *violation polyhedra* over the enumeration-side iteration indices and
//! the symbolic parameters, and certifies each one empty of integer
//! points via [`crate::presburger`]. The case split mirrors the exhaustive
//! checker exactly:
//!
//! * **Out of domain** — the enumerated point satisfies its domain and the
//!   dependence guard, but the mapped point violates one constraint of the
//!   other side's domain (one polyhedron per negated constraint; `e = 0`
//!   splits into `e ≥ 1` and `-e ≥ 1`).
//! * **Not before** — both points in-domain and either the two time
//!   vectors are equal, or (per time dimension `d`) the first `d`
//!   coordinates agree and `t_prod[d] ≥ t_cons[d] + 1`.
//! * **Race** — both points in-domain, the first `d` coordinates agree,
//!   `t_cons[d] ≥ t_prod[d] + 1`, and `d` is in the system's parallel set
//!   (the producer runs earlier, but on a dimension with no ordering
//!   guarantee).
//!
//! [`SchedDim::Tiled`] time coordinates `⌊e/s⌋` are linearized with a
//! fresh integer variable `q` constrained by `0 ≤ e − s·q ≤ s − 1`, which
//! pins `q = ⌊e/s⌋` exactly; `q` then serves as the time coordinate.
//!
//! A non-empty violation set always comes with a concrete integer witness
//! (parameter values plus consumer/producer instances) that can be
//! replayed on the exhaustive checker; an exhausted search budget yields
//! the honest [`StaticVerdict::Unknown`], never "legal".

use crate::affine::{v, AffineExpr, Env};
use crate::dependence::{Dependence, System};
use crate::domain::{Constraint, Domain};
use crate::presburger::{Assignment, Budget, Feasibility, LinExpr, Polyhedron};
use crate::schedule::SchedDim;
use std::collections::BTreeMap;
use std::fmt;

/// Options for [`System::verify_static_with`].
#[derive(Clone, Debug)]
pub struct StaticOptions {
    /// Parameters are constrained only by `param ≥ param_floor`.
    pub param_floor: i64,
    /// Resource limits for each emptiness query.
    pub budget: Budget,
}

impl Default for StaticOptions {
    fn default() -> Self {
        StaticOptions {
            param_floor: 1,
            budget: Budget::default(),
        }
    }
}

/// The kind of scheduling error a witness demonstrates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StaticViolationKind {
    /// The dependence maps an in-domain point outside the other side's
    /// domain.
    OutOfDomain,
    /// The producer instance is scheduled at-or-after the consumer.
    NotBefore,
    /// Producer and consumer first differ on a parallel time dimension.
    Race {
        /// The offending time dimension.
        dim: usize,
    },
}

impl fmt::Display for StaticViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticViolationKind::OutOfDomain => write!(f, "out-of-domain"),
            StaticViolationKind::NotBefore => write!(f, "not-before"),
            StaticViolationKind::Race { dim } => write!(f, "race on parallel dim {dim}"),
        }
    }
}

/// A concrete counterexample to schedule legality.
#[derive(Clone, Debug, PartialEq)]
pub struct StaticViolation {
    /// Label of the violated dependence.
    pub dep: String,
    /// What went wrong.
    pub kind: StaticViolationKind,
    /// Parameter values at which the violation manifests.
    pub params: Env,
    /// The consumer instance.
    pub consumer_point: Vec<i64>,
    /// The producer instance.
    pub producer_point: Vec<i64>,
}

impl fmt::Display for StaticViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<String> = self
            .params
            .iter()
            .map(|(k, val)| format!("{k}={val}"))
            .collect();
        write!(
            f,
            "{}: {} at [{}]: consumer {:?} / producer {:?}",
            self.dep,
            self.kind,
            params.join(", "),
            self.consumer_point,
            self.producer_point,
        )
    }
}

/// Per-dependence outcome of the symbolic analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum StaticVerdict {
    /// Every violation polyhedron is certified empty: the dependence is
    /// respected for all parameter values above the floor.
    Legal,
    /// A violation polyhedron contains the given integer point.
    Violation(StaticViolation),
    /// Some violation set could not be certified empty within budget and
    /// no witness was found. Must be treated as "not proven legal".
    Unknown {
        /// Which case split could not be decided.
        case: String,
    },
}

/// One dependence's report line.
#[derive(Clone, Debug)]
pub struct DepReport {
    /// The dependence label.
    pub dep: String,
    /// Outcome for this dependence.
    pub verdict: StaticVerdict,
    /// How many violation polyhedra were checked.
    pub cases: usize,
}

/// The full symbolic-legality report for a scheduled system.
#[derive(Clone, Debug, Default)]
pub struct StaticReport {
    /// One entry per dependence, in system registration order.
    pub deps: Vec<DepReport>,
}

impl StaticReport {
    /// True when every dependence is certified legal.
    #[must_use]
    pub fn is_legal(&self) -> bool {
        self.deps
            .iter()
            .all(|d| matches!(d.verdict, StaticVerdict::Legal))
    }

    /// All concrete violations found.
    pub fn violations(&self) -> impl Iterator<Item = &StaticViolation> {
        self.deps.iter().filter_map(|d| match &d.verdict {
            StaticVerdict::Violation(w) => Some(w),
            _ => None,
        })
    }

    /// Dependences whose verdict is [`StaticVerdict::Unknown`].
    pub fn unknowns(&self) -> impl Iterator<Item = &DepReport> {
        self.deps
            .iter()
            .filter(|d| matches!(d.verdict, StaticVerdict::Unknown { .. }))
    }

    /// Total violation polyhedra certified or refuted.
    #[must_use]
    pub fn cases_checked(&self) -> usize {
        self.deps.iter().map(|d| d.cases).sum()
    }
}

impl fmt::Display for StaticReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.deps {
            match &d.verdict {
                StaticVerdict::Legal => writeln!(f, "  ok   {} ({} cases)", d.dep, d.cases)?,
                StaticVerdict::Violation(w) => writeln!(f, "  FAIL {w}")?,
                StaticVerdict::Unknown { case } => {
                    writeln!(f, "  ???  {} (undecided case: {case})", d.dep)?;
                }
            }
        }
        Ok(())
    }
}

impl System {
    /// Symbolically verify every dependence under the current schedules
    /// with default options. See the module docs.
    #[must_use]
    pub fn verify_static(&self) -> StaticReport {
        self.verify_static_with(&StaticOptions::default())
    }

    /// Symbolically verify every dependence under the current schedules.
    #[must_use]
    pub fn verify_static_with(&self, opts: &StaticOptions) -> StaticReport {
        let mut report = StaticReport::default();
        for dep in self.deps() {
            report.deps.push(DepAnalysis::new(self, dep, opts).run());
        }
        report
    }
}

/// Canonical variable name for an enumeration-side index. The `$`
/// separator cannot occur in parameter names, so no collision is possible.
fn canon(prefix: &str, index: &str) -> String {
    format!("{prefix}${index}")
}

/// Everything needed to build violation polyhedra for one dependence.
struct DepAnalysis<'a> {
    system: &'a System,
    dep: &'a Dependence,
    opts: &'a StaticOptions,
    /// Enumeration-side domain indices renamed to canonical variables.
    enum_indices: Vec<String>,
    /// Identity point of the enumeration side, as canonical-variable exprs.
    enum_point: Vec<AffineExpr>,
    /// The mapped (other-side) point, as canonical-variable exprs.
    other_point: Vec<AffineExpr>,
    /// Other side's domain with its indices substituted by `other_point`.
    other_constraints: Vec<Constraint>,
    /// Base constraints: enum-side domain + guard + parameter floors.
    base: Polyhedron,
}

impl<'a> DepAnalysis<'a> {
    fn new(system: &'a System, dep: &'a Dependence, opts: &'a StaticOptions) -> Self {
        let enum_var = if dep.enumerate_producer {
            system.var(&dep.producer)
        } else {
            system.var(&dep.consumer)
        };
        let other_var = if dep.enumerate_producer {
            system.var(&dep.consumer)
        } else {
            system.var(&dep.producer)
        };
        let prefix = if dep.enumerate_producer { "p" } else { "c" };

        let enum_indices: Vec<String> = enum_var
            .domain
            .indices()
            .iter()
            .map(|i| canon(prefix, i))
            .collect();
        let enum_subs: BTreeMap<String, AffineExpr> = enum_var
            .domain
            .indices()
            .iter()
            .zip(&enum_indices)
            .map(|(i, c)| (i.clone(), v(c)))
            .collect();
        let enum_point: Vec<AffineExpr> = enum_indices.iter().map(|c| v(c)).collect();

        // The dependence map is defined over the enumeration side's
        // indices (mirroring `AffineMap::eval_point` in the exhaustive
        // checker); rebase it onto the canonical variables.
        let map_subs: BTreeMap<String, AffineExpr> = dep
            .map
            .inputs()
            .iter()
            .zip(&enum_indices)
            .map(|(i, c)| (i.clone(), v(c)))
            .collect();
        let other_point: Vec<AffineExpr> = dep
            .map
            .exprs()
            .iter()
            .map(|e| e.substitute(&map_subs))
            .collect();

        let other_subs: BTreeMap<String, AffineExpr> = other_var
            .domain
            .indices()
            .iter()
            .zip(&other_point)
            .map(|(i, e)| (i.clone(), e.clone()))
            .collect();
        let other_constraints: Vec<Constraint> = substitute_domain(&other_var.domain, &other_subs);

        let mut base = Polyhedron::new();
        for c in substitute_domain(&enum_var.domain, &enum_subs) {
            add_constraint(&mut base, &c);
        }
        if let Some(guard) = &dep.guard {
            for c in substitute_domain(guard, &enum_subs) {
                add_constraint(&mut base, &c);
            }
        }
        for p in &system.params {
            // param − floor ≥ 0.
            base.add_ge0(LinExpr::var(p).add(&LinExpr::constant(-i128::from(opts.param_floor))));
        }

        DepAnalysis {
            system,
            dep,
            opts,
            enum_indices,
            enum_point,
            other_point,
            other_constraints,
            base,
        }
    }

    fn run(self) -> DepReport {
        let mut cases = 0usize;
        let mut unknown: Option<String> = None;

        // -- Case family A: mapped point escapes the other side's domain.
        for (j, c) in self.other_constraints.iter().enumerate() {
            let negations: Vec<LinExpr> = match c {
                // ¬(e ≥ 0) ⟺ −e − 1 ≥ 0.
                Constraint::Ge0(e) => vec![LinExpr::from(e).scale(-1).add(&LinExpr::constant(-1))],
                // ¬(e = 0) ⟺ e ≥ 1 ∨ −e ≥ 1.
                Constraint::Eq0(e) => vec![
                    LinExpr::from(e).add(&LinExpr::constant(-1)),
                    LinExpr::from(e).scale(-1).add(&LinExpr::constant(-1)),
                ],
            };
            for (half, neg) in negations.into_iter().enumerate() {
                cases += 1;
                let mut poly = self.base.clone();
                poly.add_ge0(neg);
                match self.decide(&poly) {
                    Outcome::Empty => {}
                    Outcome::Witness(w) => {
                        return self.report(cases, StaticViolationKind::OutOfDomain, w);
                    }
                    Outcome::Unknown => {
                        unknown.get_or_insert(format!("out-of-domain constraint {j}.{half}"));
                    }
                }
            }
        }

        // -- Case families B/C need both sides in-domain plus the
        //    symbolic time vectors (with tiled dims linearized).
        let mut sched_base = self.base.clone();
        for c in &self.other_constraints {
            add_constraint(&mut sched_base, c);
        }
        let cons_point;
        let prod_point;
        if self.dep.enumerate_producer {
            cons_point = &self.other_point;
            prod_point = &self.enum_point;
        } else {
            cons_point = &self.enum_point;
            prod_point = &self.other_point;
        }
        let tc = self.time_exprs(&self.dep.consumer, "c", cons_point, &mut sched_base);
        let tp = self.time_exprs(&self.dep.producer, "p", prod_point, &mut sched_base);
        assert_eq!(tc.len(), tp.len(), "schedules must agree on time dims");

        // B0: identical time vectors.
        cases += 1;
        let mut poly = sched_base.clone();
        for (a, b) in tp.iter().zip(&tc) {
            poly.add_eq0(a.sub(b));
        }
        match self.decide(&poly) {
            Outcome::Empty => {}
            Outcome::Witness(w) => return self.report(cases, StaticViolationKind::NotBefore, w),
            Outcome::Unknown => {
                unknown.get_or_insert("equal time vectors".to_string());
            }
        }

        // B_d: first difference at dim d with the producer later.
        // C_d: first difference at a parallel dim d with the producer
        //      earlier (no ordering guarantee ⟹ race).
        for d in 0..tc.len() {
            for race in [false, true] {
                if race && !self.system.parallel_dims().contains(&d) {
                    continue;
                }
                cases += 1;
                let mut poly = sched_base.clone();
                for k in 0..d {
                    poly.add_eq0(tp[k].sub(&tc[k]));
                }
                let gap = if race {
                    tc[d].sub(&tp[d]) // t_cons[d] − t_prod[d] ≥ 1
                } else {
                    tp[d].sub(&tc[d]) // t_prod[d] − t_cons[d] ≥ 1
                };
                poly.add_ge0(gap.add(&LinExpr::constant(-1)));
                match self.decide(&poly) {
                    Outcome::Empty => {}
                    Outcome::Witness(w) => {
                        let kind = if race {
                            StaticViolationKind::Race { dim: d }
                        } else {
                            StaticViolationKind::NotBefore
                        };
                        return self.report(cases, kind, w);
                    }
                    Outcome::Unknown => {
                        let label = if race { "race" } else { "not-before" };
                        unknown.get_or_insert(format!("{label} at dim {d}"));
                    }
                }
            }
        }

        DepReport {
            dep: self.dep.label.clone(),
            verdict: match unknown {
                None => StaticVerdict::Legal,
                Some(case) => StaticVerdict::Unknown { case },
            },
            cases,
        }
    }

    /// Symbolic time vector of `var`'s schedule applied to `point`,
    /// linearizing tiled dims with fresh `q` variables constrained in
    /// `poly` (`0 ≤ e − s·q ≤ s − 1`).
    fn time_exprs(
        &self,
        var: &str,
        side: &str,
        point: &[AffineExpr],
        poly: &mut Polyhedron,
    ) -> Vec<LinExpr> {
        let schedule = self.system.schedule(var);
        let subs: BTreeMap<String, AffineExpr> = schedule
            .inputs()
            .iter()
            .zip(point)
            .map(|(i, e)| (i.clone(), e.clone()))
            .collect();
        schedule
            .dims()
            .iter()
            .enumerate()
            .map(|(d, dim)| match dim {
                SchedDim::Affine(e) => LinExpr::from(&e.substitute(&subs)),
                SchedDim::Tiled { expr, size } => {
                    assert!(*size >= 1, "tile size must be >= 1");
                    let q = format!("q${side}${d}");
                    let e = LinExpr::from(&expr.substitute(&subs));
                    let sq = LinExpr::var(&q).scale(i128::from(*size));
                    // e − s·q ≥ 0 and s·q + (s−1) − e ≥ 0 pin q = ⌊e/s⌋.
                    poly.add_ge0(e.sub(&sq));
                    poly.add_ge0(sq.add(&LinExpr::constant(i128::from(*size) - 1)).sub(&e));
                    LinExpr::var(&q)
                }
            })
            .collect()
    }

    fn decide(&self, poly: &Polyhedron) -> Outcome {
        match poly.feasibility(&self.opts.budget) {
            Feasibility::Empty => Outcome::Empty,
            Feasibility::Witness(w) => Outcome::Witness(w),
            Feasibility::RationalOnly => Outcome::Unknown,
        }
    }

    /// Turn a raw solver assignment into an oriented violation report.
    fn report(&self, cases: usize, kind: StaticViolationKind, witness: Assignment) -> DepReport {
        // The witness binds the polyhedron's variables; canonical index
        // variables absent from every constraint default to 0.
        let mut env: Env = witness.clone();
        for c in &self.enum_indices {
            env.entry(c.clone()).or_insert(0);
        }
        let enum_vals: Vec<i64> = self.enum_point.iter().map(|e| e.eval(&env)).collect();
        let other_vals: Vec<i64> = self.other_point.iter().map(|e| e.eval(&env)).collect();
        let (consumer_point, producer_point) = if self.dep.enumerate_producer {
            (other_vals, enum_vals)
        } else {
            (enum_vals, other_vals)
        };
        let params: Env = self
            .system
            .params
            .iter()
            .map(|p| {
                (
                    p.clone(),
                    *witness.get(p).expect("params are always constrained"), // lint: allow(expect): system constructors constrain every parameter
                )
            })
            .collect();
        DepReport {
            dep: self.dep.label.clone(),
            verdict: StaticVerdict::Violation(StaticViolation {
                dep: self.dep.label.clone(),
                kind,
                params,
                consumer_point,
                producer_point,
            }),
            cases,
        }
    }
}

enum Outcome {
    Empty,
    Witness(Assignment),
    Unknown,
}

/// A domain's constraints with its index variables substituted.
fn substitute_domain(domain: &Domain, subs: &BTreeMap<String, AffineExpr>) -> Vec<Constraint> {
    domain
        .constraints()
        .iter()
        .map(|c| match c {
            Constraint::Ge0(e) => Constraint::Ge0(e.substitute(subs)),
            Constraint::Eq0(e) => Constraint::Eq0(e.substitute(subs)),
        })
        .collect()
}

fn add_constraint(poly: &mut Polyhedron, c: &Constraint) {
    match c {
        Constraint::Ge0(e) => poly.add_ge0(LinExpr::from(e)),
        Constraint::Eq0(e) => poly.add_eq0(LinExpr::from(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{c, env, AffineMap};
    use crate::dependence::Var;
    use crate::schedule::Schedule;
    use crate::tiling::strip_mine;

    /// X[i] ← X[i−1] over 0 ≤ i < N.
    fn chain_system() -> System {
        let mut sys = System::new(&["N"]);
        let dom = Domain::universe(&["i"]).ge0(v("i")).lt(v("i"), v("N"));
        sys.add_var(Var::new("X", dom.clone()));
        sys.add_dep(
            Dependence::new(
                "flow",
                "X",
                "X",
                AffineMap::new(&["i"], vec![v("i") - c(1)]),
            )
            .with_guard(Domain::universe(&["i"]).ge0(v("i") - c(1))),
        );
        sys
    }

    #[test]
    fn forward_chain_schedule_is_legal() {
        let mut sys = chain_system();
        sys.set_schedule("X", Schedule::affine(&["i"], vec![v("i")]));
        let report = sys.verify_static();
        assert!(report.is_legal(), "{report}");
        assert!(report.cases_checked() > 0);
    }

    #[test]
    fn reversed_chain_schedule_is_caught_with_witness() {
        let mut sys = chain_system();
        sys.set_schedule("X", Schedule::affine(&["i"], vec![c(0) - v("i")]));
        let report = sys.verify_static();
        assert!(!report.is_legal());
        let w = report.violations().next().expect("a violation");
        assert_eq!(w.kind, StaticViolationKind::NotBefore);
        // Replay the witness on the exhaustive checker.
        let n = w.params["N"];
        let violations = sys.verify(&w.params, n.max(4), 64);
        assert!(!violations.is_empty(), "exhaustive checker must agree");
    }

    #[test]
    fn parallel_chain_dim_races() {
        let mut sys = chain_system();
        sys.set_schedule("X", Schedule::affine(&["i"], vec![c(0), v("i")]));
        sys.set_parallel(1);
        let report = sys.verify_static();
        assert!(!report.is_legal());
        let w = report.violations().next().expect("a violation");
        assert!(matches!(w.kind, StaticViolationKind::Race { dim: 1 }));
    }

    #[test]
    fn tiled_forward_chain_is_legal() {
        let mut sys = chain_system();
        let tiled = strip_mine(&Schedule::affine(&["i"], vec![v("i")]), &[0], &[4]);
        sys.set_schedule("X", tiled);
        let report = sys.verify_static();
        assert!(report.is_legal(), "{report}");
    }

    #[test]
    fn descending_tile_coordinate_is_caught() {
        // Time (⌊−i/2⌋, i): tile coordinate decreases as i grows, so the
        // producer i−1 lands in a *later* tile whenever i crosses a tile
        // boundary — illegal, and only expressible through the ⌊·⌋ dim.
        let mut sys = chain_system();
        sys.set_schedule(
            "X",
            Schedule::new(
                &["i"],
                vec![
                    SchedDim::Tiled {
                        expr: c(0) - v("i"),
                        size: 2,
                    },
                    SchedDim::Affine(v("i")),
                ],
            ),
        );
        let report = sys.verify_static();
        assert!(!report.is_legal());
        let w = report.violations().next().expect("a violation");
        assert_eq!(w.kind, StaticViolationKind::NotBefore);
        let n = w.params["N"];
        assert!(
            !sys.verify(&w.params, n.max(4), 64).is_empty(),
            "exhaustive checker must confirm the tiled witness"
        );
    }

    #[test]
    fn out_of_domain_map_is_caught() {
        // X[i] ← X[i−1] with no guard: at i = 0 the producer is outside.
        let mut sys = System::new(&["N"]);
        let dom = Domain::universe(&["i"]).ge0(v("i")).lt(v("i"), v("N"));
        sys.add_var(Var::new("X", dom));
        sys.add_dep(Dependence::new(
            "flow",
            "X",
            "X",
            AffineMap::new(&["i"], vec![v("i") - c(1)]),
        ));
        sys.set_schedule("X", Schedule::affine(&["i"], vec![v("i")]));
        let report = sys.verify_static();
        let w = report.violations().next().expect("a violation");
        assert_eq!(w.kind, StaticViolationKind::OutOfDomain);
        assert_eq!(w.consumer_point, vec![0]);
        assert_eq!(w.producer_point, vec![-1]);
    }

    #[test]
    fn witness_params_replay_on_exhaustive_checker() {
        let mut sys = chain_system();
        sys.set_schedule("X", Schedule::affine(&["i"], vec![c(0) - v("i")]));
        let report = sys.verify_static();
        let w = report.violations().next().expect("a violation");
        let found = sys.verify(&w.params, w.params["N"].max(4), 64);
        assert!(found
            .iter()
            .any(|viol| matches!(viol, crate::dependence::Violation::NotBefore { .. })));
    }

    #[test]
    fn two_var_reduction_style_system() {
        // F[i] consumes reduce(R[i][k]) — modeled as F[i] ← R[i, N−1]
        // with R accumulating along k.
        let mut sys = System::new(&["N"]);
        let fdom = Domain::universe(&["i"]).ge0(v("i")).lt(v("i"), v("N"));
        let rdom = Domain::universe(&["i", "k"])
            .ge0(v("i"))
            .lt(v("i"), v("N"))
            .ge0(v("k"))
            .lt(v("k"), v("N"));
        sys.add_var(Var::new("F", fdom));
        sys.add_var(Var::new("R", rdom));
        sys.add_dep(Dependence::new(
            "use",
            "F",
            "R",
            AffineMap::new(&["i"], vec![v("i"), v("N") - c(1)]),
        ));
        // Legal: R at (i, k), F after all R of its row.
        sys.set_schedule(
            "R",
            Schedule::affine(&["i", "k"], vec![v("i"), c(0), v("k")]),
        );
        sys.set_schedule("F", Schedule::affine(&["i"], vec![v("i"), c(1), c(0)]));
        assert!(sys.verify_static().is_legal());
        // Illegal: F scheduled with the first R element instead of after.
        sys.set_schedule("F", Schedule::affine(&["i"], vec![v("i"), c(0), c(0)]));
        let report = sys.verify_static();
        assert!(!report.is_legal());
        let w = report.violations().next().expect("a violation");
        let bound = w.params["N"].max(4);
        assert!(!sys.verify(&w.params, bound, 64).is_empty());
    }

    #[test]
    fn report_display_mentions_each_dep() {
        let mut sys = chain_system();
        sys.set_schedule("X", Schedule::affine(&["i"], vec![v("i")]));
        let report = sys.verify_static();
        let text = report.to_string();
        assert!(text.contains("flow"), "{text}");
        assert!(env(&[("N", 4)]).contains_key("N"));
    }
}
