//! Variables, dependences, systems, and schedule-legality verification.
//!
//! An Alpha *system* is a set of variables defined over polyhedral domains
//! by equations; each value-level read induces an affine **dependence**
//! from the consumer instance to the producer instance. A set of schedules
//! (one per variable, all into a common time space) is **legal** iff every
//! dependence instance has its producer strictly lexicographically before
//! its consumer, with the first differing time dimension *sequential* —
//! a difference first arising at a parallel dimension would be a data race
//! between threads.
//!
//! `AlphaZ` leaves validity to the user ("it is the responsibility of the
//! user to ensure the transformations are valid"); here we actually check,
//! two ways:
//!
//! * **exhaustively** — [`System::verify`] (and the general-box
//!   [`System::verify_boxed`]) enumerates every dependence instance at
//!   given parameter values and reports violation witnesses; violations in
//!   these dense, uniform systems already occur at tiny sizes, so this is
//!   a cheap concrete check (the test-suite demonstrates it has teeth by
//!   breaking schedules on purpose);
//! * **symbolically** — [`System::verify_static`] (in
//!   [`crate::verify_static`]) certifies legality for *all* parameter
//!   values at once by proving the violation polyhedra empty of integer
//!   points, or refutes it with a concrete witness the exhaustive checker
//!   can replay.

use crate::affine::{AffineMap, Env};
use crate::domain::Domain;
use crate::schedule::{lex_cmp, Schedule, TimeVec};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A variable computed by the system, with its definition domain.
#[derive(Clone, Debug)]
pub struct Var {
    /// Variable name (e.g. `"F"`, `"R0"`).
    pub name: String,
    /// Its domain (index names + constraints).
    pub domain: Domain,
}

impl Var {
    /// Build a variable.
    pub fn new(name: &str, domain: Domain) -> Self {
        Var {
            name: name.to_string(),
            domain,
        }
    }
}

/// One affine dependence: instances of `consumer` (restricted by `guard`)
/// read `producer` at `map(consumer point)`.
#[derive(Clone, Debug)]
pub struct Dependence {
    /// Human-readable label for diagnostics (e.g. `"R0 reads F left"`).
    pub label: String,
    /// Consumer variable name.
    pub consumer: String,
    /// Producer variable name.
    pub producer: String,
    /// Extra constraints (over the enumeration side's indices + params)
    /// limiting where the dependence applies; `None` means the whole
    /// enumeration domain.
    pub guard: Option<Domain>,
    /// Affine map from the enumeration side's indices to the other side's
    /// point (consumer → producer normally; producer → consumer when
    /// [`Dependence::enumerate_producer`] is set).
    pub map: AffineMap,
    /// When set, instances are enumerated over the **producer** domain and
    /// `map` sends a producer point to the consumer point that reads it.
    /// This expresses one-to-many reads such as "F consumes every partial
    /// accumulation of the reduction R0": the consumer (one F cell) reads
    /// producer instances over the whole reduction body, which is only
    /// affine in the producer's indices.
    pub enumerate_producer: bool,
}

impl Dependence {
    /// Build a dependence covering the consumer's whole domain.
    pub fn new(label: &str, consumer: &str, producer: &str, map: AffineMap) -> Self {
        Dependence {
            label: label.to_string(),
            consumer: consumer.to_string(),
            producer: producer.to_string(),
            guard: None,
            map,
            enumerate_producer: false,
        }
    }

    /// A reduction-result dependence: enumerate over the **producer**
    /// domain; `map` sends each producer (reduction-body) point to the
    /// consumer point that reads the finished reduction.
    pub fn reduction_result(label: &str, consumer: &str, producer: &str, map: AffineMap) -> Self {
        Dependence {
            label: label.to_string(),
            consumer: consumer.to_string(),
            producer: producer.to_string(),
            guard: None,
            map,
            enumerate_producer: true,
        }
    }

    /// Restrict to a guard domain (same indices as the enumeration side).
    pub fn with_guard(mut self, guard: Domain) -> Self {
        self.guard = Some(guard);
        self
    }
}

/// A legality violation witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The dependence maps a consumer instance outside the producer domain.
    OutOfDomain {
        /// Dependence label.
        dep: String,
        /// Consumer point.
        consumer_point: Vec<i64>,
        /// Mapped (invalid) producer point.
        producer_point: Vec<i64>,
    },
    /// Producer not scheduled strictly before consumer.
    NotBefore {
        /// Dependence label.
        dep: String,
        /// Consumer point and its time.
        consumer_point: Vec<i64>,
        /// Producer point and its time.
        producer_point: Vec<i64>,
        /// Consumer time vector.
        consumer_time: TimeVec,
        /// Producer time vector.
        producer_time: TimeVec,
    },
    /// Ordered only by a parallel dimension — a cross-thread race.
    Race {
        /// Dependence label.
        dep: String,
        /// Consumer point.
        consumer_point: Vec<i64>,
        /// Producer point.
        producer_point: Vec<i64>,
        /// The parallel dimension at which the times first differ.
        dim: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OutOfDomain {
                dep,
                consumer_point,
                producer_point,
            } => write!(
                f,
                "[{dep}] consumer {consumer_point:?} reads outside producer domain at {producer_point:?}"
            ),
            Violation::NotBefore {
                dep,
                consumer_point,
                producer_point,
                consumer_time,
                producer_time,
            } => write!(
                f,
                "[{dep}] producer {producer_point:?} @ {producer_time:?} not before consumer {consumer_point:?} @ {consumer_time:?}"
            ),
            Violation::Race {
                dep,
                consumer_point,
                producer_point,
                dim,
            } => write!(
                f,
                "[{dep}] producer {producer_point:?} / consumer {consumer_point:?} ordered only by parallel dim {dim} (race)"
            ),
        }
    }
}

/// A system: parameters, variables, dependences, per-variable schedules and
/// system-wide parallel time dimensions.
#[derive(Clone, Debug, Default)]
pub struct System {
    /// Size parameter names (e.g. `["M", "N"]`).
    pub params: Vec<String>,
    vars: BTreeMap<String, Var>,
    deps: Vec<Dependence>,
    schedules: BTreeMap<String, Schedule>,
    parallel: Vec<usize>,
}

impl System {
    /// An empty system over the given parameters.
    pub fn new(params: &[&str]) -> Self {
        System {
            params: params.iter().map(ToString::to_string).collect(),
            ..Default::default()
        }
    }

    /// Add a variable.
    pub fn add_var(&mut self, var: Var) -> &mut Self {
        self.vars.insert(var.name.clone(), var);
        self
    }

    /// Add a dependence (consumer and producer must exist).
    pub fn add_dep(&mut self, dep: Dependence) -> &mut Self {
        assert!(
            self.vars.contains_key(&dep.consumer),
            "unknown consumer {:?}",
            dep.consumer
        );
        assert!(
            self.vars.contains_key(&dep.producer),
            "unknown producer {:?}",
            dep.producer
        );
        self.deps.push(dep);
        self
    }

    /// Set (or replace) the schedule of a variable. All schedules must have
    /// equal time dimensionality ("a system with multiple variables
    /// requires the dimension of all the space-time maps to be equal").
    pub fn set_schedule(&mut self, var: &str, schedule: Schedule) -> &mut Self {
        assert!(self.vars.contains_key(var), "unknown variable {var:?}");
        if let Some(d) = self.schedules.values().map(Schedule::dim).next() {
            assert_eq!(
                schedule.dim(),
                d,
                "schedule dimension mismatch for {var:?} ({} vs {d})",
                schedule.dim()
            );
        }
        self.schedules.insert(var.to_string(), schedule);
        self
    }

    /// Mark time dimension `dim` parallel (`AlphaZ` `setParallel`), for the
    /// whole system.
    pub fn set_parallel(&mut self, dim: usize) -> &mut Self {
        if !self.parallel.contains(&dim) {
            self.parallel.push(dim);
            self.parallel.sort_unstable();
        }
        self
    }

    /// The system-wide parallel dimensions.
    pub fn parallel_dims(&self) -> &[usize] {
        &self.parallel
    }

    /// Look up a variable.
    pub fn var(&self, name: &str) -> &Var {
        &self.vars[name]
    }

    /// All variables, name-ordered.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.vars.values()
    }

    /// All dependences.
    pub fn deps(&self) -> &[Dependence] {
        &self.deps
    }

    /// Schedule of a variable (panics if unset).
    pub fn schedule(&self, var: &str) -> &Schedule {
        self.schedules
            .get(var)
            .unwrap_or_else(|| panic!("no schedule set for {var:?}")) // lint: allow(panic): missing schedule is a caller bug, documented
    }

    /// Verify every dependence instance at the given parameter values.
    ///
    /// `index_bound`: enumeration box half-open upper bound for every index
    /// variable (a safe choice is `max(param values)`); lower bound is 0.
    /// Returns at most `max_violations` witnesses (empty ⇒ legal at these
    /// sizes).
    pub fn verify(&self, params: &Env, index_bound: i64, max_violations: usize) -> Vec<Violation> {
        self.verify_boxed(params, 0, index_bound, max_violations)
    }

    /// Like [`System::verify`] but with an explicit enumeration box
    /// `[lo, hi)` (half-open, like [`Domain::enumerate`]) for every index
    /// variable — needed when domains reach into negative coordinates.
    pub fn verify_boxed(
        &self,
        params: &Env,
        lo: i64,
        hi: i64,
        max_violations: usize,
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        for dep in &self.deps {
            let cons = &self.vars[&dep.consumer];
            let prod = &self.vars[&dep.producer];
            let cons_sched = self.schedule(&dep.consumer);
            let prod_sched = self.schedule(&dep.producer);
            // Enumerate on one side; `map` yields the other side's point.
            let enum_var = if dep.enumerate_producer { prod } else { cons };
            let other_var = if dep.enumerate_producer { cons } else { prod };
            let mut dom = enum_var.domain.clone();
            if let Some(g) = &dep.guard {
                dom = dom.intersect(g);
            }
            let box_: Vec<(i64, i64)> = vec![(lo, hi); dom.dim()];
            for e in dom.enumerate(&box_, params) {
                let o = dep.map.eval_point(&e, params);
                // Orient into (consumer point p, producer point q).
                let (p, q) = if dep.enumerate_producer {
                    (o.clone(), e.clone())
                } else {
                    (e.clone(), o.clone())
                };
                if !other_var.domain.contains(&o, params) {
                    out.push(Violation::OutOfDomain {
                        dep: dep.label.clone(),
                        consumer_point: p,
                        producer_point: q,
                    });
                    if out.len() >= max_violations {
                        return out;
                    }
                    continue;
                }
                let tc = cons_sched.time(&p, params);
                let tp = prod_sched.time(&q, params);
                match tp.iter().zip(tc.iter()).position(|(a, b)| a != b) {
                    None => {
                        out.push(Violation::NotBefore {
                            dep: dep.label.clone(),
                            consumer_point: p.clone(),
                            producer_point: q,
                            consumer_time: tc,
                            producer_time: tp,
                        });
                    }
                    Some(d) => {
                        if lex_cmp(&tp, &tc) == Ordering::Greater {
                            out.push(Violation::NotBefore {
                                dep: dep.label.clone(),
                                consumer_point: p.clone(),
                                producer_point: q,
                                consumer_time: tc,
                                producer_time: tp,
                            });
                        } else if self.parallel.contains(&d) {
                            out.push(Violation::Race {
                                dep: dep.label.clone(),
                                consumer_point: p.clone(),
                                producer_point: q,
                                dim: d,
                            });
                        }
                    }
                }
                if out.len() >= max_violations {
                    return out;
                }
            }
        }
        out
    }

    /// Total dependence-instance count at the given sizes (the work the
    /// verifier does; useful for reporting).
    pub fn dependence_instances(&self, params: &Env, index_bound: i64) -> usize {
        self.deps
            .iter()
            .map(|dep| {
                let enum_var = if dep.enumerate_producer {
                    &self.vars[&dep.producer]
                } else {
                    &self.vars[&dep.consumer]
                };
                let mut dom = enum_var.domain.clone();
                if let Some(g) = &dep.guard {
                    dom = dom.intersect(g);
                }
                let box_: Vec<(i64, i64)> = vec![(0, index_bound); dom.dim()];
                dom.count(&box_, params)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{env, v, AffineMap};
    use crate::domain::Domain;

    /// A 1-D chain: X[i] reads X[i-1] for 1 <= i < N.
    fn chain_system(schedule: Schedule) -> System {
        let mut sys = System::new(&["N"]);
        sys.add_var(Var::new(
            "X",
            Domain::universe(&["i"]).ge0(v("i")).lt(v("i"), v("N")),
        ));
        sys.add_dep(
            Dependence::new(
                "X reads X[i-1]",
                "X",
                "X",
                AffineMap::new(&["i"], vec![v("i") - 1]),
            )
            .with_guard(Domain::universe(&["i"]).ge0(v("i") - 1)),
        );
        sys.set_schedule("X", schedule);
        sys
    }

    #[test]
    fn forward_schedule_is_legal() {
        let sys = chain_system(Schedule::affine(&["i"], vec![v("i")]));
        assert!(sys.verify(&env(&[("N", 8)]), 8, 10).is_empty());
    }

    #[test]
    fn reversed_schedule_is_caught() {
        let sys = chain_system(Schedule::affine(&["i"], vec![-v("i")]));
        let viol = sys.verify(&env(&[("N", 8)]), 8, 10);
        assert!(matches!(viol[0], Violation::NotBefore { .. }));
    }

    #[test]
    fn constant_schedule_is_caught_as_not_before() {
        let sys = chain_system(Schedule::affine(&["i"], vec![crate::affine::c(0)]));
        let viol = sys.verify(&env(&[("N", 4)]), 4, 10);
        assert!(!viol.is_empty());
        assert!(matches!(viol[0], Violation::NotBefore { .. }));
    }

    #[test]
    fn parallel_chain_is_a_race() {
        let mut sys = chain_system(Schedule::affine(&["i"], vec![v("i")]));
        sys.set_parallel(0);
        let viol = sys.verify(&env(&[("N", 4)]), 4, 10);
        assert!(matches!(viol[0], Violation::Race { dim: 0, .. }));
    }

    #[test]
    fn inner_parallel_dim_is_fine_when_outer_orders() {
        // 2-D: X[i][j] reads X[i-1][j']; schedule (i, j) with j parallel:
        // ordering established at dim 0 (sequential) → no race.
        let mut sys = System::new(&["N"]);
        sys.add_var(Var::new(
            "X",
            Domain::universe(&["i", "j"])
                .ge0(v("i"))
                .lt(v("i"), v("N"))
                .ge0(v("j"))
                .lt(v("j"), v("N")),
        ));
        sys.add_dep(
            Dependence::new(
                "row reads previous row transposed",
                "X",
                "X",
                AffineMap::new(&["i", "j"], vec![v("i") - 1, v("j")]),
            )
            .with_guard(Domain::universe(&["i", "j"]).ge0(v("i") - 1)),
        );
        sys.set_schedule("X", Schedule::affine(&["i", "j"], vec![v("i"), v("j")]));
        sys.set_parallel(1);
        assert!(sys.verify(&env(&[("N", 5)]), 5, 10).is_empty());
    }

    #[test]
    fn out_of_domain_read_is_caught() {
        // Dependence without the guard: X[0] would read X[-1].
        let mut sys = System::new(&["N"]);
        sys.add_var(Var::new(
            "X",
            Domain::universe(&["i"]).ge0(v("i")).lt(v("i"), v("N")),
        ));
        sys.add_dep(Dependence::new(
            "unguarded chain",
            "X",
            "X",
            AffineMap::new(&["i"], vec![v("i") - 1]),
        ));
        sys.set_schedule("X", Schedule::affine(&["i"], vec![v("i")]));
        let viol = sys.verify(&env(&[("N", 3)]), 3, 10);
        assert!(matches!(viol[0], Violation::OutOfDomain { .. }));
    }

    #[test]
    fn self_time_equality_is_not_before() {
        // Schedule that maps consumer and producer to the same instant.
        let sys = chain_system(Schedule::affine(&["i"], vec![v("i") - v("i")]));
        let viol = sys.verify(&env(&[("N", 3)]), 3, 10);
        assert!(matches!(viol[0], Violation::NotBefore { .. }));
    }

    #[test]
    #[should_panic(expected = "schedule dimension mismatch")]
    fn mismatched_schedule_dims_panic() {
        let mut sys = System::new(&["N"]);
        sys.add_var(Var::new("A", Domain::universe(&["i"])));
        sys.add_var(Var::new("B", Domain::universe(&["i"])));
        sys.set_schedule("A", Schedule::affine(&["i"], vec![v("i")]));
        sys.set_schedule("B", Schedule::affine(&["i"], vec![v("i"), v("i")]));
    }

    #[test]
    fn dependence_instance_count() {
        let sys = chain_system(Schedule::affine(&["i"], vec![v("i")]));
        // guard: 1 <= i < 6 → 5 instances
        assert_eq!(sys.dependence_instances(&env(&[("N", 6)]), 6), 5);
    }

    #[test]
    fn max_violations_truncates() {
        let sys = chain_system(Schedule::affine(&["i"], vec![-v("i")]));
        let viol = sys.verify(&env(&[("N", 20)]), 20, 3);
        assert_eq!(viol.len(), 3);
    }

    /// Reduction-result dependence: `Y` reads the completed reduction
    /// `R[i, k]` over all k — enumerated on the producer side.
    fn reduction_system(y_sched: Schedule) -> System {
        let mut sys = System::new(&["N"]);
        sys.add_var(Var::new(
            "R",
            Domain::universe(&["i", "k"])
                .ge0(v("i"))
                .lt(v("i"), v("N"))
                .ge0(v("k"))
                .lt(v("k"), v("N")),
        ));
        sys.add_var(Var::new(
            "Y",
            Domain::universe(&["i"]).ge0(v("i")).lt(v("i"), v("N")),
        ));
        sys.add_dep(Dependence::reduction_result(
            "Y consumes reduce(R)",
            "Y",
            "R",
            AffineMap::new(&["i", "k"], vec![v("i")]),
        ));
        // R body at time (i, k), 2-D schedules throughout.
        sys.set_schedule("R", Schedule::affine(&["i", "k"], vec![v("i"), v("k")]));
        sys.set_schedule("Y", y_sched);
        sys
    }

    #[test]
    fn reduction_result_after_whole_body_is_legal() {
        // Y[i] at (i, N): after every R[i, k] (k < N).
        let sys = reduction_system(Schedule::affine(&["i"], vec![v("i"), v("N")]));
        assert!(sys.verify(&env(&[("N", 5)]), 5, 10).is_empty());
    }

    #[test]
    fn reduction_result_too_early_is_caught() {
        // Y[i] at (i, 0): before most of the reduction body.
        let sys = reduction_system(Schedule::affine(&["i"], vec![v("i"), crate::affine::c(0)]));
        let viol = sys.verify(&env(&[("N", 4)]), 4, 50);
        assert!(viol
            .iter()
            .any(|x| matches!(x, Violation::NotBefore { .. })));
    }
}
