//! Batch engine throughput: pooled arena + adaptive scheduling vs a naive
//! solve loop.
//!
//! Measured part: a mixed-size problem set (cycled from `--sizes`) solved
//! three ways — a plain per-problem `solve_opts` loop (fresh table every
//! time), the batch engine cold (arena empty), and the batch engine warm
//! (arena populated by the cold wave). Scores are asserted bit-identical
//! across all three. The headline *metrics* are the arena counters: after
//! the cold wave the steady state must allocate **zero** new blocks
//! (`second_wave_allocs`), which this binary asserts — that part is
//! hardware-independent. The wall-clock speedup is reported but not
//! asserted: on a single-core host (or under the sequential rayon shim)
//! one-problem-per-thread scheduling has no cores to win on.
//!
//! Also measured: the same wave with durable checkpoint journaling
//! (`solve_all_checkpointed` — the fsync-per-problem overhead) and a
//! full `resume` from the finished journal (pure replay, zero
//! recomputation — the resume-overhead floor).

use bench::report::Reporter;
use bench::{banner, f2, gflops, model, time_stats, workload, Opts, Table};
use bpmax::batch::{BatchEngine, BatchOptions};
use bpmax::{BpMaxProblem, SolveOptions};
use std::time::Duration;

fn main() {
    let opts = Opts::parse(&[8, 12, 16, 20], &[8]);
    let mut rep = Reporter::new("bench_batch_throughput", &opts);
    banner(
        "Batch",
        "batch engine throughput and arena reuse",
        "steady-state solves allocate zero F-table blocks; coarse scheduling scales with cores",
    );

    let threads = opts.threads[0].max(1);
    let count = if opts.smoke {
        24
    } else if opts.full {
        128
    } else {
        64
    };
    let problems: Vec<BpMaxProblem> = (0..count)
        .map(|i| {
            let m = opts.sizes[i % opts.sizes.len()];
            let n = opts.sizes[(i / opts.sizes.len() + i) % opts.sizes.len()];
            let (s1, s2) = workload(opts.seed + i as u64, m, n);
            BpMaxProblem::new(s1, s2, model())
        })
        .collect();
    let total_flops: u64 = problems.iter().map(BpMaxProblem::flops).sum();
    println!(
        "\n{count} problems, sizes cycled from {:?}, {:.2} MFLOP total",
        opts.sizes,
        total_flops as f64 / 1e6
    );

    // Reference: the naive loop — one fresh F-table per problem.
    let solve_opts = SolveOptions::new();
    let naive_scores: Vec<f32> = problems
        .iter()
        .map(|p| p.solve_opts(&solve_opts).expect("solve").score())
        .collect();
    let reps = opts.reps(3);
    let naive_stats = time_stats(reps, || {
        problems
            .iter()
            .map(|p| p.solve_opts(&solve_opts).expect("solve").score())
            .sum::<f32>()
    });
    rep.measured("measured/naive-loop/t=1", naive_stats, Some(total_flops));
    rep.annotate(&[("problems", count as f64)]);

    // Certified-unchecked fast path: the same per-problem loop with the
    // Phase A slice bounds checks elided — every elision justified by a
    // polyhedral in-bounds certificate (`bpmax-cli verify --bounds`).
    // Scores are asserted *bit*-identical to the safe path; the speedup
    // is the measured price of the bounds checks.
    let checked_opts = SolveOptions::new().certified_unchecked(false);
    let unchecked_opts = SolveOptions::new().certified_unchecked(true);
    let unchecked_scores: Vec<f32> = problems
        .iter()
        .map(|p| p.solve_opts(&unchecked_opts).expect("solve").score())
        .collect();
    for (i, (c, u)) in naive_scores.iter().zip(&unchecked_scores).enumerate() {
        assert_eq!(
            c.to_bits(),
            u.to_bits(),
            "problem {i}: certified-unchecked score must be bit-identical"
        );
    }
    let checked_stats = time_stats(reps, || {
        problems
            .iter()
            .map(|p| p.solve_opts(&checked_opts).expect("solve").score())
            .sum::<f32>()
    });
    let unchecked_stats = time_stats(reps, || {
        problems
            .iter()
            .map(|p| p.solve_opts(&unchecked_opts).expect("solve").score())
            .sum::<f32>()
    });
    let unchecked_speedup = checked_stats.median_s / unchecked_stats.median_s;
    rep.measured(
        "measured/certified-unchecked/t=1",
        unchecked_stats,
        Some(total_flops),
    );
    rep.annotate(&[
        ("problems", count as f64),
        ("speedup_vs_checked", unchecked_speedup),
    ]);

    // Batch engine: cold wave populates the arena, warm waves must not
    // allocate.
    let engine = BatchEngine::new(BatchOptions::new().threads(threads)).expect("engine");
    let cold = engine.solve_all(&problems).expect("cold wave");
    let cold_scores: Vec<f32> = cold.items.iter().map(|i| i.score).collect();
    assert_eq!(cold_scores, naive_scores, "batch must match naive solves");

    let after_cold = engine.pool_stats();
    let warm_stats = time_stats(reps, || {
        engine.solve_all(&problems).expect("warm wave").len()
    });
    let warm = engine.solve_all(&problems).expect("warm wave");
    let warm_allocs = engine.pool_stats().allocated_since(&after_cold);
    assert_eq!(
        warm_allocs,
        0,
        "steady state allocated {warm_allocs} blocks (pool {:?})",
        engine.pool_stats()
    );

    let speedup = naive_stats.median_s / warm_stats.median_s;
    let (lat_min, lat_med, lat_max) = warm.latency_s();
    rep.measured(
        format!("measured/batch/t={threads}"),
        warm_stats,
        Some(total_flops),
    );
    rep.annotate(&[
        ("problems", count as f64),
        ("threads", threads as f64),
        ("speedup_vs_naive", speedup),
        ("coarse_fraction", warm.coarse_fraction()),
        ("latency_median_s", lat_med),
        ("pool_allocated", after_cold.allocated as f64),
        ("pool_reused", engine.pool_stats().reused as f64),
        ("steady_state_allocs", warm_allocs as f64),
    ]);

    // Supervised warm wave: a generous deadline and budget must leave
    // every outcome Ok with bit-identical scores — supervision overhead
    // is a couple of relaxed atomic loads per diagonal, nothing more.
    let supervised = BatchEngine::new(
        BatchOptions::new()
            .threads(threads)
            .deadline(Duration::from_secs(600))
            .mem_budget(4 << 30),
    )
    .expect("supervised engine");
    supervised.solve_all(&problems).expect("supervised cold");
    let sup_stats = time_stats(reps, || {
        supervised
            .solve_all(&problems)
            .expect("supervised wave")
            .len()
    });
    let sup_wave = supervised.solve_all(&problems).expect("supervised wave");
    let counts = sup_wave.outcomes();
    assert!(
        counts.all_ok(),
        "generous supervision must stay all-ok: {counts}"
    );
    let sup_scores: Vec<f32> = sup_wave.items.iter().map(|i| i.score).collect();
    assert_eq!(
        sup_scores, naive_scores,
        "supervised batch must match naive solves"
    );
    rep.measured(
        format!("measured/batch-supervised/t={threads}"),
        sup_stats,
        Some(total_flops),
    );
    rep.annotate(&[
        ("problems", count as f64),
        ("outcomes_ok", counts.ok as f64),
        ("outcomes_degraded", counts.degraded as f64),
        ("outcomes_failed", counts.failed as f64),
        ("outcomes_cancelled", counts.cancelled as f64),
        ("outcomes_timed_out", counts.timed_out as f64),
    ]);

    // Checkpointed wave: durable journaling on the warm path, then a
    // pure journal replay — the resume-overhead number. Scores stay
    // bit-identical and a full replay recomputes nothing.
    let ckpt_dir = std::env::temp_dir().join(format!("bpmax-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let ckpt_stats = time_stats(reps, || {
        engine
            .solve_all_checkpointed(&problems, &ckpt_dir)
            .expect("checkpointed wave")
            .len()
    });
    let ckpt_wave = engine
        .solve_all_checkpointed(&problems, &ckpt_dir)
        .expect("checkpointed wave");
    let ckpt_scores: Vec<f32> = ckpt_wave.items.iter().map(|i| i.score).collect();
    assert_eq!(
        ckpt_scores, naive_scores,
        "checkpointed batch must match naive solves"
    );
    let resume_stats = time_stats(reps, || {
        engine.resume(&problems, &ckpt_dir).expect("resume").len()
    });
    let resumed = engine.resume(&problems, &ckpt_dir).expect("resume");
    assert_eq!(
        resumed.replayed, count,
        "a completed journal must replay every problem"
    );
    let resumed_scores: Vec<f32> = resumed.items.iter().map(|i| i.score).collect();
    assert_eq!(
        resumed_scores, naive_scores,
        "replayed scores must match naive solves"
    );
    rep.measured(
        format!("measured/batch-checkpointed/t={threads}"),
        ckpt_stats,
        Some(total_flops),
    );
    rep.annotate(&[
        ("problems", count as f64),
        (
            "journal_overhead_vs_warm",
            (ckpt_stats.median_s - warm_stats.median_s) / warm_stats.median_s,
        ),
    ]);
    rep.measured(
        format!("measured/batch-resume-replay/t={threads}"),
        resume_stats,
        None,
    );
    rep.annotate(&[
        ("problems", count as f64),
        ("replayed", resumed.replayed as f64),
    ]);
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let mut t = Table::new(&["wave", "median s", "prob/s", "GFLOPS"]);
    for (name, s) in [
        ("naive loop", naive_stats),
        ("checked solve loop", checked_stats),
        ("certified-unchecked loop", unchecked_stats),
        ("batch warm", warm_stats),
        ("batch supervised", sup_stats),
        ("batch checkpointed", ckpt_stats),
        ("resume (pure replay)", resume_stats),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:.4}", s.median_s),
            format!("{:.0}", count as f64 / s.median_s),
            f2(gflops(total_flops, s.median_s)),
        ]);
    }
    t.print();
    println!(
        "\ncertified-unchecked: {unchecked_speedup:.2}x vs checked solve loop (scores bit-identical)"
    );
    println!(
        "cold wave: {:.4} s; warm speedup vs naive loop: {:.2}x at {threads} threads \
         ({:.0}% coarse)",
        cold.wall_s,
        speedup,
        100.0 * warm.coarse_fraction()
    );
    println!(
        "arena: {} blocks allocated cold, {} reuses since, {} steady-state allocations",
        after_cold.allocated,
        engine.pool_stats().reused,
        warm_allocs
    );
    println!(
        "per-problem latency (warm): min {:.2} us / median {:.2} us / max {:.2} us",
        lat_min * 1e6,
        lat_med * 1e6,
        lat_max * 1e6
    );
    println!(
        "supervised wave (600 s deadline, 4 GiB budget): outcomes: {counts}, \
         overhead vs warm {:+.1}%",
        100.0 * (sup_stats.median_s - warm_stats.median_s) / warm_stats.median_s
    );
    println!(
        "checkpoint: journal overhead vs warm {:+.1}%; full resume replays \
         {} problems in {:.4} s without recomputing any",
        100.0 * (ckpt_stats.median_s - warm_stats.median_s) / warm_stats.median_s,
        resumed.replayed,
        resume_stats.median_s
    );
    rep.finish();
}
