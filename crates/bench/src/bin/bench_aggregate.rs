//! `bench_aggregate` — fold a telemetry directory into the repo-root
//! `BENCH_SUMMARY.json`.
//!
//! Reads every `results/json/*.json` report written by the figure/table
//! binaries and emits one summary document: per-artifact roll-ups
//! (measurement counts per kind, best measured/modeled GFLOPS) plus the
//! cross-artifact performance *trajectory* the paper argues for —
//! measured naive → tiled double max-plus, measured base → hybrid+tiled
//! `BPMax`, and the modeled paper-machine headline numbers
//! (117 GFLOPS tiled kernel, >100× full-program speedup).
//!
//! ```text
//! bench_aggregate --dir results/json --out BENCH_SUMMARY.json
//! ```

use bench::report::{summarize, Report};
use std::path::PathBuf;

const USAGE: &str = "usage: bench_aggregate [--dir results/json] [--out BENCH_SUMMARY.json]";

fn main() {
    let mut dir = PathBuf::from("results/json");
    let mut out = PathBuf::from("BENCH_SUMMARY.json");
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        let result = match flag.as_str() {
            "--dir" => value().map(|v| dir = PathBuf::from(v)),
            "--out" => value().map(|v| out = PathBuf::from(v)),
            other => Err(format!("unknown option '{other}'")),
        };
        if let Err(e) = result {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }

    let reports = match Report::load_dir(&dir) {
        Ok(reports) if !reports.is_empty() => reports,
        Ok(_) => {
            eprintln!("error: no reports in {}", dir.display());
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        Err(e) => {
            // missing directory or corrupt report JSON: misuse, usage text
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let summary = summarize(&reports);
    if let Err(e) = std::fs::write(&out, summary.render()) {
        eprintln!("error: writing {}: {e}", out.display());
        std::process::exit(2);
    }

    println!(
        "aggregated {} report(s) from {} into {}",
        reports.len(),
        dir.display(),
        out.display()
    );
    if let Some(bench::json::Json::Obj(pairs)) = summary.get("trajectory").cloned() {
        if pairs.is_empty() {
            println!("(no trajectory headline — perf artifacts not in this report set)");
        }
        for (key, value) in pairs {
            if let Some(x) = value.as_f64() {
                println!("  {key}: {x:.2}");
            }
        }
    }
}
