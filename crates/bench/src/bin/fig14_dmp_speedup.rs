//! Fig 14 — double max-plus speedup over the base implementation.
//!
//! Same data as Fig 13, speedup view. Paper headline: ~178× for the tiled
//! kernel over the original order at 6 threads (sequential improvement of
//! 40–200% over the prior fine-grain schedule).

use bench::dmp::{dmp_flops, dmp_solve};
use bench::report::Reporter;
use bench::{banner, f1, time_stats, Opts, Table};
use bpmax::ftable::Layout;
use bpmax::kernels::{R0Order, Tile};
use bpmax::perfmodel::{predict_dmp_gflops, CostModel, DmpVariant};
use machine::spec::MachineSpec;
use simsched::speedup::HtModel;

fn main() {
    let opts = Opts::parse(&[12, 16, 24, 32], &[6]);
    let mut rep = Reporter::new("fig14_dmp_speedup", &opts);
    banner(
        "Fig 14",
        "double max-plus speedup comparison (vs base order)",
        "~178x for tiled at 6 threads; permutation alone is a large serial win",
    );

    println!("\n--- measured serial speedups (loop order only), this machine ---");
    println!("(tiling only pays off once the triangles outgrow L1/L2 -- use --sizes 48,64)");
    let mut t = Table::new(&["M=N", "permuted/naive", "tiled/naive"]);
    for &n in &opts.sizes {
        let flops = dmp_flops(n, n);
        let reps = opts.reps(if n <= 16 { 3 } else { 1 });
        let s_naive = time_stats(reps, || dmp_solve(n, n, R0Order::Naive, Layout::Packed));
        let s_perm = time_stats(reps, || dmp_solve(n, n, R0Order::Permuted, Layout::Packed));
        let s_tiled = time_stats(reps, || {
            dmp_solve(n, n, R0Order::Tiled(Tile::small()), Layout::Packed)
        });
        let (t_naive, t_perm, t_tiled) = (s_naive.median_s, s_perm.median_s, s_tiled.median_s);
        rep.measured(format!("measured/naive/m={n},n={n}"), s_naive, Some(flops));
        rep.measured(
            format!("measured/permuted/m={n},n={n}"),
            s_perm,
            Some(flops),
        );
        rep.annotate(&[("speedup_vs_naive", t_naive / t_perm)]);
        rep.measured(
            format!("measured/tiled 32x4xN/m={n},n={n}"),
            s_tiled,
            Some(flops),
        );
        rep.annotate(&[("speedup_vs_naive", t_naive / t_tiled)]);
        t.row(vec![
            n.to_string(),
            f1(t_naive / t_perm),
            f1(t_naive / t_tiled),
        ]);
    }
    t.print();

    println!("\n--- modeled speedup vs base, 6 threads, paper machine ---");
    let cm = CostModel::nominal(); // representative per-core Xeon rates (see perfmodel)
    let spec = MachineSpec::xeon_e5_1650v4();
    let ht = HtModel {
        physical: spec.cores,
        smt_efficiency: 0.15,
    };
    let sizes: Vec<usize> = if opts.full {
        vec![64, 128, 256, 512, 1024, 2048]
    } else {
        vec![64, 128, 256, 512, 1024]
    };
    let mut header = vec!["M=N".to_string()];
    header.extend(
        DmpVariant::all()
            .iter()
            .skip(1)
            .map(|v| v.label().to_string()),
    );
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for &n in &sizes {
        let base = predict_dmp_gflops(DmpVariant::Base, n, n, 1, &cm, &spec, ht);
        let mut cells = vec![n.to_string()];
        for v in DmpVariant::all().into_iter().skip(1) {
            let g = predict_dmp_gflops(v, n, n, opts.threads[0], &cm, &spec, ht);
            rep.values(
                format!("modeled/{}/t={}/n={n}", v.label(), opts.threads[0]),
                bench::report::Kind::Modeled,
                &[("speedup_vs_base", g / base)],
            );
            cells.push(f1(g / base));
        }
        t.row(cells);
    }
    t.print();
    rep.finish();
}
