//! Table I — double max-plus schedule candidates: verified, then raced.
//!
//! Part 1 verifies each Table I schedule against the `F`/`R0` dependences
//! and reports which have the streaming `j2` innermost (vectorizable).
//! Part 2 measures the actual kernel in the two loop orders (plus the
//! tiled one) to show the permutation's effect on this machine.

use bench::dmp::{dmp_flops, dmp_solve};
use bench::report::{Kind, Reporter};
use bench::{banner, f2, gflops, time_stats, Opts, Table};
use bpmax::ftable::Layout;
use bpmax::kernels::{R0Order, Tile};
use bpmax::schedules::dmp_schedules;
use polyhedral::affine::env;

fn main() {
    let opts = Opts::parse(&[16, 24, 32], &[]);
    let mut rep = Reporter::new("table01_dmp_schedules", &opts);
    banner(
        "Table I",
        "double max-plus schedules",
        "loop permutations that keep k2 out of the innermost position enable auto-vectorization",
    );

    println!("\n--- legality & vectorizability ---");
    let mut t = Table::new(&["schedule", "innermost", "legal @ (4,4)/(5,3)"]);
    for s in dmp_schedules() {
        let mut legal = true;
        for (m, n) in [(4i64, 4i64), (5, 3)] {
            legal &= s
                .system
                .verify(&env(&[("M", m), ("N", n)]), m.max(n), 1)
                .is_empty();
        }
        rep.values(
            format!("static/schedule/{}", s.label),
            Kind::Static,
            &[
                ("legal", f64::from(legal)),
                ("vectorizable", f64::from(s.vectorizable)),
            ],
        );
        t.row(vec![
            s.label.to_string(),
            if s.vectorizable {
                "j2 (vec)"
            } else {
                "k2 (no vec)"
            }
            .to_string(),
            if legal { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(legal);
    }
    t.print();

    println!("\n--- measured kernel throughput (1 thread, this machine) ---");
    let mut t = Table::new(&[
        "M=N",
        "naive GFLOPS",
        "permuted GFLOPS",
        "tiled GFLOPS",
        "reg-tiled GFLOPS",
        "perm/naive",
    ]);
    for &n in &opts.sizes {
        let reps = opts.reps(if n <= 24 { 3 } else { 1 });
        let flops = dmp_flops(n, n);
        let s_naive = time_stats(reps, || dmp_solve(n, n, R0Order::Naive, Layout::Packed));
        let s_perm = time_stats(reps, || dmp_solve(n, n, R0Order::Permuted, Layout::Packed));
        let s_tiled = time_stats(reps, || {
            dmp_solve(n, n, R0Order::Tiled(Tile::small()), Layout::Packed)
        });
        let s_reg = time_stats(reps, || dmp_solve(n, n, R0Order::RegTiled, Layout::Packed));
        let (t_naive, t_perm) = (s_naive.median_s, s_perm.median_s);
        rep.measured(format!("measured/naive/m={n},n={n}"), s_naive, Some(flops));
        rep.measured(
            format!("measured/permuted/m={n},n={n}"),
            s_perm,
            Some(flops),
        );
        rep.annotate(&[("speedup_vs_naive", t_naive / t_perm)]);
        rep.measured(
            format!("measured/tiled 32x4xN/m={n},n={n}"),
            s_tiled,
            Some(flops),
        );
        rep.measured(
            format!("measured/reg-tiled/m={n},n={n}"),
            s_reg,
            Some(flops),
        );
        t.row(vec![
            n.to_string(),
            f2(gflops(flops, t_naive)),
            f2(gflops(flops, t_perm)),
            f2(gflops(flops, s_tiled.median_s)),
            f2(gflops(flops, s_reg.median_s)),
            f2(t_naive / t_perm),
        ]);
    }
    t.print();
    rep.finish();
}
