//! Ablation — OMP scheduling policy on the `BPMax` wavefront.
//!
//! §IV.C.d: "The OMP dynamic-schedule works better than the static and
//! guided-schedule due to an imbalanced workload." The workload: one outer
//! diagonal's triangles (coarse) or one triangle's rows (fine) — both
//! triangular, i.e. linearly decreasing task costs.

use bench::report::{Kind, Reporter};
use bench::{banner, f2, Opts, Table};
use simsched::sched::{simulate_parallel_for, OmpPolicy};

fn triangle_rows(n: usize) -> Vec<f64> {
    // row i2 of a triangle costs ~ (n - i2)^2 / 2 streaming updates
    (0..n).map(|i2| ((n - i2) as f64).powi(2) / 2.0).collect()
}

fn main() {
    let opts = Opts::parse(&[], &[]);
    let mut rep = Reporter::new("ablation_sched_policy", &opts);
    banner(
        "Ablation",
        "OMP scheduling policy on triangular wavefronts",
        "dynamic > guided > static under the row-imbalance of BPMax",
    );
    for (label, n, threads) in [
        ("fine-grain rows, n=64", 64usize, 6usize),
        ("fine-grain rows, n=256", 256, 6),
        ("fine-grain rows, n=256, 12 threads", 256, 12),
    ] {
        let costs = triangle_rows(n);
        let total: f64 = costs.iter().sum();
        println!("\n{label} (ideal = {:.0}):", total / threads as f64);
        let mut t = Table::new(&["policy", "makespan", "vs ideal", "imbalance"]);
        for (name, policy) in [
            ("static (blocks)", OmpPolicy::Static { chunk: None }),
            (
                "static,1 (round-robin)",
                OmpPolicy::Static { chunk: Some(1) },
            ),
            ("guided", OmpPolicy::Guided { min_chunk: 1 }),
            ("dynamic", OmpPolicy::Dynamic { chunk: 1 }),
        ] {
            let r = simulate_parallel_for(&costs, threads, policy);
            rep.values(
                format!("simulated/{label}/{name}"),
                Kind::Simulated,
                &[
                    ("makespan", r.makespan),
                    ("vs_ideal", r.makespan / (total / threads as f64)),
                    ("imbalance", r.imbalance()),
                ],
            );
            t.row(vec![
                name.to_string(),
                format!("{:.0}", r.makespan),
                f2(r.makespan / (total / threads as f64)),
                f2(r.imbalance()),
            ]);
        }
        t.print();
    }
    rep.finish();
}
