//! Solve-daemon round-trip latency: cold solve vs warm cache hit.
//!
//! Measured part: an in-process [`Server`] on a real Unix socket, driven
//! by a persistent [`Client`] connection. Three request classes are
//! timed — `stats` (the pure protocol floor: socket + codec, no solver),
//! cold solves (every request a *distinct* problem, so the solver runs
//! and the result is cached), and warm cache hits (a fixed already-solved
//! set replayed, so the daemon answers from the content-addressed cache
//! without touching the solver or the pool). Warm scores are asserted
//! bit-identical to their cold counterparts, the pool counters must not
//! move across the warm wave, and the headline ratio — warm hits at
//! least 10x faster than cold solves — is asserted, not just reported:
//! it is the whole point of keeping a daemon resident.
//!
//! Cold timing note: the daemon memoizes every solve, so a repeated
//! closure over one problem set would measure the cache after the first
//! repetition. Each timed repetition (and the warm-up call) therefore
//! consumes a fresh slice of a pregenerated problem pool.

use bench::report::Reporter;
use bench::{banner, f2, model, time_stats, workload, Opts, Table};
use bpmax::serve::{Client, Response, Server, ServerConfig, SolveRequest};
use bpmax::{BpMaxProblem, SolveOptions};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn solved(resp: Response) -> (f32, bool) {
    match resp {
        Response::Solved {
            score, cache_hit, ..
        } => (score, cache_hit),
        other => panic!("expected Solved, got {other:?}"),
    }
}

fn main() {
    let opts = Opts::parse(&[16, 24], &[1]);
    let mut rep = Reporter::new("bench_serve", &opts);
    banner(
        "Serve",
        "resident daemon round-trip latency",
        "a warm cache hit must be >=10x faster than a cold solve",
    );

    let per_pass = if opts.smoke {
        8
    } else if opts.full {
        48
    } else {
        24
    };
    let reps = opts.reps(5);
    // Fresh problems for the warm-up call plus every timed repetition.
    let cold_pool: Vec<SolveRequest> = (0..per_pass * (reps + 1))
        .map(|i| {
            let m = opts.sizes[i % opts.sizes.len()];
            let n = opts.sizes[(i / opts.sizes.len() + i) % opts.sizes.len()];
            let (s1, s2) = workload(opts.seed + i as u64, m, n);
            SolveRequest::new(s1, s2, model())
        })
        .collect();
    // The warm set: a disjoint seed range, solved once up front, then
    // replayed as pure cache hits.
    let warm_set: Vec<SolveRequest> = (0..per_pass)
        .map(|i| {
            let m = opts.sizes[i % opts.sizes.len()];
            let (s1, s2) = workload(opts.seed + 0x5EED + i as u64, m, m);
            SolveRequest::new(s1, s2, model())
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("bpmax-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let server = Arc::new(
        Server::new(ServerConfig {
            socket: dir.join("bpmax.sock"),
            ..ServerConfig::default()
        })
        .expect("server"),
    );
    let runner = Arc::clone(&server);
    let daemon = std::thread::spawn(move || runner.run().expect("daemon"));
    let deadline = Instant::now() + Duration::from_secs(10);
    while Client::connect(&server.cfg().socket).is_err() {
        assert!(Instant::now() < deadline, "daemon never came up");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut client = Client::connect(&server.cfg().socket).expect("connect");
    println!(
        "\n{per_pass} requests per pass, sizes cycled from {:?}, one persistent connection",
        opts.sizes
    );

    // Protocol floor: stats round-trips carry no solve at all.
    let proto_stats = time_stats(reps, || client.stats().expect("stats"));
    rep.measured("measured/serve-protocol/t=1", proto_stats, None);

    // Cold: every request a fresh problem — the solver runs each time.
    let next = AtomicUsize::new(0);
    let cold_stats = time_stats(reps, || {
        let at = next.fetch_add(per_pass, Ordering::Relaxed); // ordering: single-threaded cursor over the pool
        cold_pool[at..at + per_pass]
            .iter()
            .map(|r| solved(client.solve(r).expect("cold solve")).0)
            .sum::<f32>()
    });
    rep.measured("measured/serve-cold/t=1", cold_stats, None);
    rep.annotate(&[
        ("requests", per_pass as f64),
        ("latency_us", 1e6 * cold_stats.median_s / per_pass as f64),
    ]);

    // Warm: solve the warm set once, remember the scores, then every
    // replay must be a cache hit with the same bits.
    let reference: Vec<f32> = warm_set
        .iter()
        .map(|r| solved(client.solve(r).expect("warm seed")).0)
        .collect();
    let stats_before = client.stats().expect("stats");
    let warm_stats = time_stats(reps, || {
        warm_set
            .iter()
            .zip(&reference)
            .map(|(r, want)| {
                let (score, hit) = solved(client.solve(r).expect("warm hit"));
                assert!(hit, "warm request missed the cache");
                assert_eq!(score.to_bits(), want.to_bits(), "cache hit changed bits");
                score
            })
            .sum::<f32>()
    });
    let stats_after = client.stats().expect("stats");
    assert_eq!(
        stats_after.solves, stats_before.solves,
        "warm wave must not run the solver"
    );
    assert_eq!(
        stats_after.pool.allocated_since(&stats_before.pool),
        0,
        "warm wave must not touch the pool"
    );

    // In-process reference: the warm scores must match direct solves.
    for (req, want) in warm_set.iter().zip(&reference) {
        let direct = BpMaxProblem::new(req.seq1.clone(), req.seq2.clone(), req.model.clone())
            .solve_opts(&SolveOptions::new())
            .expect("direct solve")
            .score();
        assert_eq!(direct.to_bits(), want.to_bits(), "daemon diverged from lib");
    }

    let speedup = cold_stats.median_s / warm_stats.median_s;
    rep.measured("measured/serve-warm-hit/t=1", warm_stats, None);
    rep.annotate(&[
        ("requests", per_pass as f64),
        ("latency_us", 1e6 * warm_stats.median_s / per_pass as f64),
        ("speedup_vs_cold", speedup),
        (
            "cache_hits",
            (stats_after.cache_hits - stats_before.cache_hits) as f64,
        ),
    ]);

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);

    let mut t = Table::new(&["request class", "median s / pass", "us / request"]);
    for (name, s, n) in [
        ("stats (protocol floor)", proto_stats, 1usize),
        ("cold solve", cold_stats, per_pass),
        ("warm cache hit", warm_stats, per_pass),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:.6}", s.median_s),
            f2(1e6 * s.median_s / n as f64),
        ]);
    }
    t.print();
    println!(
        "\nwarm cache hit: {speedup:.1}x faster than cold solve \
         (scores bit-identical, zero solver runs, zero pool allocations)"
    );
    assert!(
        speedup >= 10.0,
        "warm hits must be >=10x faster than cold solves, got {speedup:.1}x"
    );
    rep.finish();
}
