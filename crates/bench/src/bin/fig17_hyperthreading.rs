//! Fig 17 — effect of hyper-threading on the tiled double max-plus.
//!
//! Modeled (DESIGN.md §3): the tiled kernel at 1–12 threads on the 6C/12T
//! Xeon, with the SMT efficiency model. Paper observation: "minimal
//! (3–5%) improvement with hyper-threading over six threads" for the
//! compute-dense tiled kernel (vs >10% reported by prior work for a less
//! optimized kernel — shown here as a higher-η curve).

use bench::report::Reporter;
use bench::{banner, f1, f2, Opts, Table};
use bpmax::perfmodel::{predict_dmp_gflops, CostModel, DmpVariant};
use machine::spec::MachineSpec;
use simsched::speedup::HtModel;

fn main() {
    let opts = Opts::parse(&[96], &[1, 2, 4, 6, 8, 10, 12]);
    let mut rep = Reporter::new("fig17_hyperthreading", &opts);
    banner(
        "Fig 17",
        "effect of hyper-threading on tiled double max-plus",
        "3-5% gain from 6 -> 12 threads on the 6-core machine",
    );
    let cm = CostModel::nominal(); // representative per-core Xeon rates (see perfmodel)
    let spec = MachineSpec::xeon_e5_1650v4();
    let n = opts.sizes[0];
    let m = 32.min(n);
    // Two SMT-efficiency scenarios: the tiled kernel (issue-bound, low η)
    // and a less-optimized kernel (latency-bound, higher η — the prior
    // work's >10% observation).
    let scenarios = [
        ("tiled kernel (eta=0.06)", 0.06, DmpVariant::Tiled),
        (
            "unoptimized kernel (eta=0.30)",
            0.30,
            DmpVariant::FineDiagonal,
        ),
    ];
    for (label, eta, variant) in scenarios {
        let scenario = if eta < 0.1 { "tiled" } else { "unoptimized" };
        println!("\n{label}, problem {m}x{n}:");
        let ht = HtModel {
            physical: spec.cores,
            smt_efficiency: eta,
        };
        let mut t = Table::new(&["threads", "GFLOPS (model)", "gain vs 6T %"]);
        let g6 = predict_dmp_gflops(variant, m, n, 6, &cm, &spec, ht);
        for &threads in &opts.threads {
            let g = predict_dmp_gflops(variant, m, n, threads, &cm, &spec, ht);
            rep.modeled_gflops(format!("modeled/{scenario}/t={threads}/m={m},n={n}"), g);
            rep.annotate(&[("eta", eta), ("gain_vs_6t", g / g6 - 1.0)]);
            t.row(vec![
                threads.to_string(),
                f2(g),
                if threads > 6 {
                    f1((g / g6 - 1.0) * 100.0)
                } else {
                    "-".to_string()
                },
            ]);
        }
        t.print();
    }
    rep.finish();
}
