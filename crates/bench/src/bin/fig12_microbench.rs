//! Fig 12 — the max-plus streaming micro-benchmark `Y = max(a + X, Y)`.
//!
//! Measured part: single-thread GFLOPS across working-set sizes (L1-, L2-,
//! L3- and DRAM-resident chunks), on this machine.
//!
//! Modeled part (single-core CI substitution, DESIGN.md §3): thread
//! scaling 1–12 on the paper's 6C/12T Xeon, from the measured per-core
//! rate, private-L1 bandwidth scaling and the SMT efficiency model. The
//! paper measures ~120 GFLOPS at 6 threads and ~240 at 12 on its machine.

use bench::report::Reporter;
use bench::{banner, f1, f2, Opts, Table};
use machine::spec::MachineSpec;
use simsched::speedup::HtModel;
use tropical::stream::{sweep_chunks, StreamBench};

fn main() {
    let opts = Opts::parse(&[], &[1, 2, 4, 6, 8, 12]);
    let mut rep = Reporter::new("fig12_microbench", &opts);
    banner(
        "Fig 12",
        "micro-benchmark for Y = max(a+X, Y)",
        "L1-resident streaming reaches a large fraction of the attainable roof; ~120 GFLOPS @6T / ~240 @12T on E5-1650v4",
    );

    // --- measured: chunk sweep on this machine, 1 thread ---
    let budget: u64 = if opts.full {
        1 << 31
    } else if opts.smoke {
        1 << 24
    } else {
        1 << 28
    };
    let chunks: Vec<usize> = vec![
        8 << 10,   // L1-resident (2 arrays × 8 KiB)
        16 << 10,  // L1 boundary
        64 << 10,  // L2
        512 << 10, // L3
        4 << 20,   // L3 boundary
        32 << 20,  // DRAM
    ];
    let mut t = Table::new(&["chunk bytes/array", "elems", "GFLOPS (1 thread, measured)"]);
    let results = sweep_chunks(&chunks, budget);
    let mut l1_rate = results[0].1;
    for (bytes, (elems, g)) in chunks.iter().zip(&results) {
        rep.measured_gflops(format!("measured/stream/chunk={bytes}"), *g);
        rep.annotate(&[("elems", *elems as f64)]);
        t.row(vec![bytes.to_string(), elems.to_string(), f2(*g)]);
        l1_rate = l1_rate.max(*g);
    }
    t.print();

    // --- one calibrated long run for stability ---
    let mut bench = StreamBench::new(8 << 10 >> 2);
    let iters = if opts.full {
        1 << 17
    } else if opts.smoke {
        1 << 13
    } else {
        1 << 15
    };
    let res = bench.run(iters);
    rep.measured_gflops("measured/stream/steady-l1", res.gflops());
    rep.annotate(&[("gbytes_per_sec", res.gbytes_per_sec())]);
    println!(
        "\nsteady-state L1 run: {} GFLOPS, {} GB/s effective",
        f2(res.gflops()),
        f2(res.gbytes_per_sec())
    );

    // --- modeled: thread scaling on the paper's machine ---
    let spec = MachineSpec::xeon_e5_1650v4();
    let ht = HtModel {
        physical: spec.cores,
        smt_efficiency: 1.0, // the micro-benchmark is latency-tolerant; the
                             // paper sees ~2x from 6→12 threads here
    };
    println!(
        "\nmodeled thread scaling on {} (per-core rate = measured {} GFLOPS):",
        spec.name,
        f2(l1_rate)
    );
    let mut t = Table::new(&["threads", "GFLOPS (model)", "paper (approx)"]);
    for &threads in &opts.threads {
        let agg = ht.aggregate_throughput(threads);
        let modeled = l1_rate * agg;
        rep.modeled_gflops(format!("modeled/{}/t={threads}", spec.name), modeled);
        let paper = match threads {
            6 => "~120",
            12 => "~240",
            _ => "-",
        };
        t.row(vec![threads.to_string(), f1(modeled), paper.to_string()]);
    }
    t.print();
    rep.finish();
}
