//! Fig 15 — full-BPMax performance by program version.
//!
//! Measured part: every real program version at 1 thread on this machine
//! (results are asserted identical across versions — the benchmark is also
//! a correctness check). Modeled part: the five paper curves at 6 threads
//! on the paper's Xeon. Expected shape: base ≪ coarse/fine < hybrid <
//! hybrid+tiled (paper: ~76 GFLOPS for the tiled full program, ~60% below
//! the pure kernel because of R1/R2).

use bench::report::Reporter;
use bench::{banner, f2, gflops, model, time_stats, workload, Opts, Table};
use bpmax::kernels::Tile;
use bpmax::perfmodel::{predict_bpmax_gflops, CostModel};
use bpmax::{Algorithm, BpMaxProblem, SolveOptions};
use machine::spec::MachineSpec;
use simsched::speedup::HtModel;

fn solve(p: &BpMaxProblem, alg: Algorithm) -> bpmax::FTable {
    p.solve_opts(&SolveOptions::new().algorithm(alg))
        .expect("unsupervised bench solve")
        .into_ftable()
}

fn main() {
    let opts = Opts::parse(&[10, 14, 18, 24], &[6]);
    let mut rep = Reporter::new("fig15_bpmax_perf", &opts);
    banner(
        "Fig 15",
        "BPMax performance comparison",
        "hybrid+tiled best (~76 GFLOPS); coarse & fine worst among optimized; R1/R2 cap the program",
    );

    println!("\n--- measured, 1 thread, this machine (GFLOPS) ---");
    println!("(note: parallel variants pay rayon dispatch overhead with no cores to use it;\n their win is in the modeled section / on multicore hardware)");
    let algs = Algorithm::ALL;
    let mut header = vec!["M=N".to_string()];
    header.extend(algs.iter().map(|a| a.label().to_string()));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for &n in &opts.sizes {
        let (s1, s2) = workload(opts.seed, n, n);
        let p = BpMaxProblem::new(s1, s2, model());
        let flops = p.flops();
        let reference = solve(&p, Algorithm::Permuted).final_score();
        let mut cells = vec![n.to_string()];
        for &alg in algs {
            let reps = opts.reps(if n <= 14 { 3 } else { 1 });
            let stats = time_stats(reps, || solve(&p, alg));
            assert_eq!(
                solve(&p, alg).final_score(),
                reference,
                "version {alg:?} disagrees"
            );
            rep.measured(
                format!("measured/{}/n={n}", alg.label()),
                stats,
                Some(flops),
            );
            rep.annotate(&[("n", n as f64)]);
            cells.push(f2(gflops(flops, stats.median_s)));
        }
        t.row(cells);
    }
    t.print();

    println!("\n--- modeled, 6 threads, paper machine (GFLOPS) ---");
    let cm = CostModel::nominal(); // representative per-core Xeon rates (see perfmodel)
    let spec = MachineSpec::xeon_e5_1650v4();
    let ht = HtModel {
        physical: spec.cores,
        smt_efficiency: 0.15,
    };
    let sizes: Vec<usize> = if opts.full {
        vec![64, 128, 256, 512, 1024]
    } else {
        vec![64, 128, 256, 512]
    };
    let curves = [
        Algorithm::Baseline,
        Algorithm::CoarseGrain,
        Algorithm::FineGrain,
        Algorithm::Hybrid,
        Algorithm::HybridTiled {
            tile: Tile::default(),
        },
    ];
    let mut header = vec!["M=N".to_string()];
    header.extend(curves.iter().map(|a| a.label().to_string()));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for &n in &sizes {
        let mut cells = vec![n.to_string()];
        for &alg in &curves {
            let g = predict_bpmax_gflops(alg, n, n, opts.threads[0], &cm, &spec, ht);
            rep.modeled_gflops(
                format!("modeled/{}/t={}/n={n}", alg.label(), opts.threads[0]),
                g,
            );
            cells.push(f2(g));
        }
        t.row(cells);
    }
    t.print();
    rep.finish();
}
