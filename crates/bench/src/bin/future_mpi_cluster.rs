//! Future-work experiment — distributing `BPMax` over an MPI cluster.
//!
//! The paper's conclusion: "We also plan to ... distribute the
//! computation over a cluster using MPI." `simsched::distributed` models
//! the wavefront with block-cyclic triangle ownership and non-overlapped
//! communication; this binary sweeps node counts and problem sizes to
//! show where an MPI port pays off (compute-bound large problems) and
//! where it cannot (latency-bound small ones).

use bench::report::{Kind, Reporter};
use bench::{banner, f1, f2, Opts, Table};
use simsched::distributed::{distributed_speedup, simulate_bpmax_distributed, ClusterSpec};

fn main() {
    let opts = Opts::parse(&[], &[1, 2, 4, 8, 16]);
    let mut rep = Reporter::new("future_mpi_cluster", &opts);
    banner(
        "Future work",
        "BPMax on an MPI cluster (model)",
        "conclusion: 'distribute the computation over a cluster using MPI'",
    );
    let base = ClusterSpec::commodity(1);
    println!(
        "\ncluster node: {} cores x {} GFLOPS; link {} GB/s, latency {} us",
        base.cores_per_node, base.core_gflops, base.link_gbps, base.latency_us
    );
    let sizes: &[(usize, usize)] = if opts.full {
        &[(16, 64), (32, 256), (64, 1024), (128, 2048)]
    } else {
        &[(16, 64), (32, 256), (64, 1024)]
    };
    for &(m, n) in sizes {
        println!("\nproblem {m} x {n}:");
        let mut t = Table::new(&["nodes", "seconds", "speedup", "comm %", "GB moved"]);
        for &nodes in &opts.threads {
            let spec = ClusterSpec { nodes, ..base };
            let r = simulate_bpmax_distributed(m, n, &spec);
            rep.add(bench::report::Measurement {
                id: format!("modeled/cluster/nodes={nodes}/m={m},n={n}"),
                kind: Kind::Modeled,
                reps: 0,
                median_s: None,
                mad_s: None,
                gflops: Some(machine::traffic::bpmax_flops(m, n) as f64 / r.seconds / 1e9),
                metrics: vec![
                    ("seconds".to_string(), r.seconds),
                    (
                        "speedup".to_string(),
                        distributed_speedup(m, n, &base, nodes),
                    ),
                    ("comm_fraction".to_string(), r.comm_fraction()),
                    ("bytes_moved".to_string(), r.bytes_moved as f64),
                ],
            });
            t.row(vec![
                nodes.to_string(),
                format!("{:.4}", r.seconds),
                f1(distributed_speedup(m, n, &base, nodes)),
                f1(r.comm_fraction() * 100.0),
                f2(r.bytes_moved as f64 / 1e9),
            ]);
        }
        t.print();
    }
    println!("\n(model: block-cyclic ownership, non-overlapped communication — the");
    println!(" pessimistic baseline an actual MPI port would start from)");
    rep.finish();
}
