//! Fig 18 — effect of the tiling parameters `(i2 × k2 × j2)` on the
//! double max-plus kernel at an asymmetric `16 × N` problem.
//!
//! Measured on this machine (scaled: the paper uses 16 × 2500; default
//! here is 16 × 192, pass `--full` for 16 × 512). Expected shape: cubic
//! tiles lose; shapes with `j2` untiled win ("we observe the best result
//! when j2 is not tiled due to the streaming effect").

use bench::dmp::{dmp_flops, dmp_solve};
use bench::report::Reporter;
use bench::{banner, f2, gflops, time_stats, Opts, Table};
use bpmax::ftable::Layout;
use bpmax::kernels::{R0Order, Tile};

fn main() {
    let opts = Opts::parse(&[192], &[]);
    let mut rep = Reporter::new("fig18_tile_sweep", &opts);
    banner(
        "Fig 18",
        "effect of tiling parameters (i2 x k2 x j2), 16 x N problem",
        "cubic tiles perform poorly; best shapes leave j2 untiled (paper: 16 x 2500)",
    );
    let m = 16usize;
    let n = if opts.full { 512 } else { opts.sizes[0] };
    let flops = dmp_flops(m, n);
    let shapes: Vec<(String, Tile)> = vec![
        ("8 x 8 x 8 (cubic)".into(), Tile::cubic(8)),
        ("16 x 16 x 16 (cubic)".into(), Tile::cubic(16)),
        ("32 x 32 x 32 (cubic)".into(), Tile::cubic(32)),
        ("32 x 4 x N".into(), Tile::small()),
        ("64 x 16 x N".into(), Tile::default()),
        (
            "16 x 8 x N".into(),
            Tile {
                i2: 16,
                k2: 8,
                j2: usize::MAX,
            },
        ),
        (
            "128 x 32 x N".into(),
            Tile {
                i2: 128,
                k2: 32,
                j2: usize::MAX,
            },
        ),
        (
            "32 x 4 x 64 (j2 tiled)".into(),
            Tile {
                i2: 32,
                k2: 4,
                j2: 64,
            },
        ),
        (
            "untiled (permuted)".into(),
            Tile {
                i2: usize::MAX,
                k2: usize::MAX,
                j2: usize::MAX,
            },
        ),
    ];
    println!("\nproblem: {m} x {n}, 1 thread, this machine");
    let mut t = Table::new(&["tile (i2 x k2 x j2)", "GFLOPS", "vs untiled"]);
    let reps = opts.reps(1);
    let s_untiled = time_stats(reps, || dmp_solve(m, n, R0Order::Permuted, Layout::Packed));
    let g_untiled = gflops(flops, s_untiled.median_s);
    rep.measured(
        format!("measured/untiled/m={m},n={n}"),
        s_untiled,
        Some(flops),
    );
    for (label, tile) in shapes {
        let stats = time_stats(reps, || {
            dmp_solve(m, n, R0Order::Tiled(tile), Layout::Packed)
        });
        let g = gflops(flops, stats.median_s);
        rep.measured(format!("measured/{label}/m={m},n={n}"), stats, Some(flops));
        rep.annotate(&[("vs_untiled", g / g_untiled)]);
        t.row(vec![label, f2(g), f2(g / g_untiled)]);
    }
    t.print();
    rep.finish();
}
