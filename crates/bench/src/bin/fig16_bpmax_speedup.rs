//! Fig 16 — full-BPMax speedup over the original program.
//!
//! Measured serial speedups on this machine (loop order + locality only)
//! plus the modeled 6-thread speedup on the paper's Xeon. Paper headline:
//! ">100× speedup for longer sequence lengths with 6 threads" for the
//! hybrid+tiled version.

use bench::report::Reporter;
use bench::{banner, f1, model, time_stats, workload, Opts, Table};
use bpmax::kernels::Tile;
use bpmax::perfmodel::{predict_bpmax_seconds, CostModel};
use bpmax::{Algorithm, BpMaxProblem, SolveOptions};
use machine::spec::MachineSpec;
use simsched::speedup::HtModel;

fn solve(p: &BpMaxProblem, alg: Algorithm) -> bpmax::FTable {
    p.solve_opts(&SolveOptions::new().algorithm(alg))
        .expect("unsupervised bench solve")
        .into_ftable()
}

fn main() {
    let opts = Opts::parse(&[10, 14, 18, 24], &[6]);
    let mut rep = Reporter::new("fig16_bpmax_speedup", &opts);
    banner(
        "Fig 16",
        "BPMax speedup comparison (vs original program)",
        ">100x at scale with 6 threads for hybrid+tiled",
    );

    println!("\n--- measured serial speedup vs baseline, this machine ---");
    println!("(hybrid pays rayon dispatch overhead on this 1-core box; see modeled table)");
    let mut t = Table::new(&["M=N", "permuted", "hybrid", "hybrid+tiled"]);
    for &n in &opts.sizes {
        let (s1, s2) = workload(opts.seed, n, n);
        let p = BpMaxProblem::new(s1, s2, model());
        let reps = opts.reps(if n <= 14 { 3 } else { 1 });
        let flops = p.flops();
        let s_base = time_stats(reps, || solve(&p, Algorithm::Baseline));
        let t_base = s_base.median_s;
        rep.measured(format!("measured/base/n={n}"), s_base, Some(flops));
        let mut cells = vec![n.to_string()];
        for alg in [
            Algorithm::Permuted,
            Algorithm::Hybrid,
            Algorithm::HybridTiled {
                tile: Tile::default(),
            },
        ] {
            let stats = time_stats(reps, || solve(&p, alg));
            rep.measured(
                format!("measured/{}/n={n}", alg.label()),
                stats,
                Some(flops),
            );
            rep.annotate(&[("speedup_vs_base", t_base / stats.median_s)]);
            cells.push(f1(t_base / stats.median_s));
        }
        t.row(cells);
    }
    t.print();

    println!("\n--- modeled speedup vs baseline, 6 threads, paper machine ---");
    let cm = CostModel::nominal(); // representative per-core Xeon rates (see perfmodel)
    let spec = MachineSpec::xeon_e5_1650v4();
    let ht = HtModel {
        physical: spec.cores,
        smt_efficiency: 0.15,
    };
    let sizes: Vec<usize> = if opts.full {
        vec![64, 128, 256, 512, 1024]
    } else {
        vec![64, 128, 256, 512]
    };
    let curves = [
        Algorithm::CoarseGrain,
        Algorithm::FineGrain,
        Algorithm::Hybrid,
        Algorithm::HybridTiled {
            tile: Tile::default(),
        },
    ];
    let mut header = vec!["M=N".to_string()];
    header.extend(curves.iter().map(|a| a.label().to_string()));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for &n in &sizes {
        let base = predict_bpmax_seconds(Algorithm::Baseline, n, n, 1, &cm, &spec, ht);
        let mut cells = vec![n.to_string()];
        for &alg in &curves {
            let s = predict_bpmax_seconds(alg, n, n, opts.threads[0], &cm, &spec, ht);
            rep.values(
                format!("modeled/{}/t={}/n={n}", alg.label(), opts.threads[0]),
                bench::report::Kind::Modeled,
                &[("speedup_vs_base", base / s)],
            );
            cells.push(f1(base / s));
        }
        t.row(cells);
    }
    t.print();
    rep.finish();
}
