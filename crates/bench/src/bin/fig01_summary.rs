//! Fig 1 — summary of the optimization results.
//!
//! The paper's opening figure: speedup of the optimized (hybrid + tiled)
//! `BPMax` over the original program, and fraction of machine peak reached,
//! on both Xeons. Here: the measured serial part on this machine plus the
//! modeled 6-thread (E5-1650v4) and 8-thread (E-2278G) numbers.

use bench::report::Reporter;
use bench::{banner, f1, f2, model, time_stats, workload, Opts, Table};
use bpmax::kernels::Tile;
use bpmax::perfmodel::{predict_bpmax_gflops, predict_bpmax_seconds, CostModel};
use bpmax::{Algorithm, BpMaxProblem, SolveOptions};
use machine::spec::MachineSpec;
use machine::traffic;
use simsched::speedup::HtModel;

fn solve(p: &BpMaxProblem, alg: Algorithm) -> bpmax::FTable {
    p.solve_opts(&SolveOptions::new().algorithm(alg))
        .expect("unsupervised bench solve")
        .into_ftable()
}

fn main() {
    let opts = Opts::parse(&[12, 18, 24], &[]);
    let mut rep = Reporter::new("fig01_summary", &opts);
    banner(
        "Fig 1",
        "summary of the optimization results",
        ">100x speedup over the original BPMax; ~1/4..1/5 of theoretical max-plus peak",
    );

    println!("\n--- measured on this machine (1 thread) ---");
    let mut t = Table::new(&["M=N", "base s", "tiled s", "speedup", "tiled GFLOPS"]);
    for &n in &opts.sizes {
        let (s1, s2) = workload(opts.seed, n, n);
        let p = BpMaxProblem::new(s1, s2, model());
        let reps = opts.reps(if n <= 14 { 3 } else { 1 });
        let sb = time_stats(reps, || solve(&p, Algorithm::Baseline));
        let st = time_stats(reps, || {
            solve(
                &p,
                Algorithm::HybridTiled {
                    tile: Tile::default(),
                },
            )
        });
        let (tb, tt) = (sb.median_s, st.median_s);
        rep.measured(format!("measured/base/n={n}"), sb, Some(p.flops()));
        rep.annotate(&[("n", n as f64)]);
        rep.measured(format!("measured/hybrid+tiled/n={n}"), st, Some(p.flops()));
        rep.annotate(&[("n", n as f64), ("speedup_vs_base", tb / tt)]);
        t.row(vec![
            n.to_string(),
            format!("{tb:.4}"),
            format!("{tt:.4}"),
            f1(tb / tt),
            f2(p.flops() as f64 / tt / 1e9),
        ]);
    }
    t.print();

    println!("\n--- modeled on the paper's machines (full thread counts) ---");
    let cm = CostModel::nominal(); // representative per-core Xeon rates (see perfmodel)
    let n = if opts.full { 512 } else { 128 };
    let mut t = Table::new(&[
        "machine",
        "threads",
        "base 1T s",
        "tiled s",
        "speedup",
        "GFLOPS",
        "% of peak",
    ]);
    for spec in [MachineSpec::xeon_e5_1650v4(), MachineSpec::xeon_e_2278g()] {
        let ht = HtModel {
            physical: spec.cores,
            smt_efficiency: 0.15,
        };
        let threads = spec.cores;
        let base = predict_bpmax_seconds(Algorithm::Baseline, n, n, 1, &cm, &spec, ht);
        let tiled = predict_bpmax_seconds(
            Algorithm::HybridTiled {
                tile: Tile::default(),
            },
            n,
            n,
            threads,
            &cm,
            &spec,
            ht,
        );
        let g = predict_bpmax_gflops(
            Algorithm::HybridTiled {
                tile: Tile::default(),
            },
            n,
            n,
            threads,
            &cm,
            &spec,
            ht,
        );
        rep.modeled_gflops(format!("modeled/{}/t={threads}/n={n}", spec.name), g);
        rep.annotate(&[
            ("speedup_vs_base_1t", base / tiled),
            ("pct_of_peak", 100.0 * g / spec.socket_peak_gflops()),
        ]);
        t.row(vec![
            spec.name.to_string(),
            threads.to_string(),
            format!("{base:.2}"),
            format!("{tiled:.3}"),
            f1(base / tiled),
            f1(g),
            f1(100.0 * g / spec.socket_peak_gflops()),
        ]);
    }
    t.print();
    rep.finish();
    println!(
        "\n(problem size {n} x {n}: {} reduction GFLOP total)",
        f2(traffic::bpmax_flops(n, n) as f64 / 1e9)
    );
}
