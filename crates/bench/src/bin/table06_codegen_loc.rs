//! Table VI — auto-generated code statistics per `BPMax` version.
//!
//! The paper counts the C LOC `AlphaZ` emits (base 140; double max-plus
//! ~150; full coarse/fine/hybrid ~1200; tiled ~1400) plus hand-written /
//! macro-patched lines. Our code generator prints the same programs from
//! the loop-nest IR; absolute LOC differ (different printer, and our
//! statement macros hide more), but the ordering and growth reproduce.

use bench::report::{Kind, Reporter};
use bench::{banner, Opts, Table};
use bpmax::nests;
use polyhedral::codegen::render;

fn main() {
    let opts = Opts::parse(&[], &[]);
    let mut rep = Reporter::new("table06_codegen_loc", &opts);
    banner(
        "Table VI",
        "generated code statistics",
        "base 140 LOC; dmp ~150; full versions ~1200; hybrid+tiled ~1400",
    );
    let mut t = Table::new(&[
        "implementation",
        "LOC",
        "loops",
        "parallel",
        "stmts",
        "depth",
    ]);
    for s in nests::table6() {
        rep.values(
            format!("static/codegen/{}", s.name),
            Kind::Static,
            &[
                ("loc", s.loc as f64),
                ("loops", s.loops as f64),
                ("parallel_loops", s.parallel_loops as f64),
                ("statements", s.statements as f64),
                ("max_depth", s.max_depth as f64),
            ],
        );
        t.row(vec![
            s.name.clone(),
            s.loc.to_string(),
            s.loops.to_string(),
            s.parallel_loops.to_string(),
            s.statements.to_string(),
            s.max_depth.to_string(),
        ]);
    }
    t.print();

    println!("\n--- sample: generated hybrid+tiled program ---\n");
    println!("{}", render(&nests::tiled_nest(64, 16)));
    rep.finish();
}
