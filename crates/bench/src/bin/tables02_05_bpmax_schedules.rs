//! Tables II–V — the full-BPMax schedules, printed and machine-verified.
//!
//! For each schedule set (fine-grain, coarse-grain, hybrid, hybrid+tiled)
//! this prints every variable's space-time map and the parallel dimension,
//! then verifies legality of **every dependence instance** at several
//! problem sizes — the check `AlphaZ` leaves to the user.

use bench::report::{Kind, Reporter};
use bench::{banner, Opts, Table};
use bpmax::schedules;
use polyhedral::affine::env;
use polyhedral::System;

fn report(rep: &mut Reporter, name: &str, paper: &str, sys: &System, sizes: &[(i64, i64)]) {
    println!("\n### {name} ({paper})");
    let mut t = Table::new(&["variable", "schedule"]);
    for var in sys.vars() {
        t.row(vec![var.name.clone(), sys.schedule(&var.name).to_string()]);
    }
    t.print();
    println!("parallel time dimensions: {:?}", sys.parallel_dims());
    for &(m, n) in sizes {
        let params = env(&[("M", m), ("N", n)]);
        let instances = sys.dependence_instances(&params, m.max(n));
        let viol = sys.verify(&params, m.max(n), 10);
        println!(
            "verify M={m} N={n}: {instances} dependence instances -> {}",
            if viol.is_empty() {
                "LEGAL".to_string()
            } else {
                format!("{} VIOLATIONS (first: {})", viol.len(), viol[0])
            }
        );
        rep.values(
            format!("static/{name}/M={m},N={n}"),
            Kind::Static,
            &[
                ("dependence_instances", instances as f64),
                ("violations", viol.len() as f64),
            ],
        );
        assert!(viol.is_empty(), "schedule {name} must be legal");
    }
}

fn main() {
    let opts = Opts::parse(&[], &[]);
    let mut rep = Reporter::new("tables02_05_bpmax_schedules", &opts);
    banner(
        "Tables II-V",
        "full-BPMax space-time maps, verified",
        "fine-grain (II, par dim 5), coarse-grain (III), hybrid (IV, par dim 4), hybrid+tiled (V)",
    );
    let sizes: &[(i64, i64)] = if opts.full {
        &[(4, 4), (5, 3), (6, 5)]
    } else {
        &[(4, 4), (5, 3)]
    };
    report(
        &mut rep,
        "base",
        "original program",
        &schedules::base_schedule(),
        sizes,
    );
    report(
        &mut rep,
        "fine-grain",
        "Table II",
        &schedules::fine_grain(),
        sizes,
    );
    report(
        &mut rep,
        "coarse-grain",
        "Table III",
        &schedules::coarse_grain(),
        sizes,
    );
    report(&mut rep, "hybrid", "Table IV", &schedules::hybrid(), sizes);
    report(
        &mut rep,
        "hybrid + tiled (ti=2, tk=2)",
        "Table V",
        &schedules::hybrid_tiled(2, 2),
        sizes,
    );
    println!("\nall schedule sets verified legal.");
    rep.finish();
}
