//! Multi-process coordinator throughput and recovery overhead.
//!
//! Measured part: a mixed-size problem set solved three ways — a
//! single-process `BatchEngine::solve_all` baseline, the multi-process
//! coordinator (`bpmax::coordinator::run`, this binary re-invoking
//! itself as the workers), and the coordinator again with one worker
//! `SIGKILL`ed mid-run. Merged scores are asserted **bit**-identical to
//! the single-process baseline in every configuration — crash recovery
//! included. The wall-clock speedup is reported but not asserted
//! (process spawn + ledger I/O dominate on tiny problems and single-core
//! hosts); what *is* asserted is the recovery contract: a successful
//! mid-run kill must produce at least one recorded respawn and still
//! merge a complete, bit-identical report.
//!
//! Also modeled: the ideal W-worker makespan from `simsched`'s
//! dynamic-scheduling simulator over the measured per-problem costs —
//! the model the measured speedup is compared against (the gap is the
//! coordinator's process + ledger overhead).
//!
//! Worker mode: the coordinator launches `current_exe()` with this
//! binary's own argv; the `BPMAX_COORD_*` contract (detected via
//! [`bpmax::coordinator::worker_env`]) routes those re-invocations into
//! `run_worker` before any benchmarking starts. Workers rebuild the
//! identical problem set from the same argv + seed, which the ledger
//! root manifest verifies.

use bench::report::{Kind, Reporter};
use bench::{banner, f2, model, time_stats, workload, Opts, Table};
use bpmax::batch::{BatchEngine, BatchOptions};
use bpmax::coordinator::{self, CoordinatorOptions, WorkerCommand};
use bpmax::{BatchReport, BpMaxProblem};
use simsched::{simulate_parallel_for, OmpPolicy};
use std::path::Path;
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The problem set both the coordinator and its worker re-invocations
/// rebuild — must be a pure function of `Opts` (argv + seed) so the
/// ledger root manifest matches across processes.
fn problem_set(opts: &Opts) -> Vec<BpMaxProblem> {
    let count = if opts.smoke {
        16
    } else if opts.full {
        64
    } else {
        32
    };
    (0..count)
        .map(|i| {
            let m = opts.sizes[i % opts.sizes.len()];
            let n = opts.sizes[(i / opts.sizes.len() + i) % opts.sizes.len()];
            let (s1, s2) = workload(opts.seed + i as u64, m, n);
            BpMaxProblem::new(s1, s2, model())
        })
        .collect()
}

/// One thread per worker process: inter-problem parallelism comes from
/// the process fan-out, which keeps the simsched comparison honest
/// (W workers ≙ W lanes). Excluded from the batch fingerprint, so the
/// coordinator and baseline still share one manifest hash.
fn batch_opts() -> BatchOptions {
    BatchOptions::new().threads(1)
}

fn assert_bit_identical(what: &str, baseline: &BatchReport, got: &BatchReport) {
    assert_eq!(got.items.len(), baseline.items.len(), "{what}: item count");
    for (b, g) in baseline.items.iter().zip(&got.items) {
        assert_eq!(
            b.score.to_bits(),
            g.score.to_bits(),
            "{what}: problem {} score must be bit-identical",
            b.index
        );
        assert!(g.error.is_none(), "{what}: problem {} failed", g.index);
    }
}

/// Poll the ledger until `done_after` problems are settled, then
/// SIGKILL the first live worker pid found. Returns whether a kill
/// landed (the run may finish first on very fast hosts).
fn kill_one_worker(dir: &Path, done_after: usize, stop: &AtomicBool) -> bool {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    // ordering: Relaxed — a plain stop flag, no data published across it
    while !stop.load(Ordering::Relaxed) && std::time::Instant::now() < deadline {
        let done = std::fs::read_dir(dir.join("claims"))
            .map(|rd| {
                rd.flatten()
                    .filter(|e| e.file_name().to_string_lossy().starts_with("done-"))
                    .count()
            })
            .unwrap_or(0);
        if done >= done_after {
            let pids: Vec<String> = std::fs::read_dir(dir)
                .into_iter()
                .flatten()
                .flatten()
                .filter(|e| e.file_name().to_string_lossy().starts_with("worker-"))
                .filter_map(|e| std::fs::read_to_string(coordinator::pid_path(&e.path())).ok())
                .collect();
            for pid in pids {
                let killed = Command::new("kill")
                    .args(["-9", pid.trim()])
                    .status()
                    .map(|s| s.success())
                    .unwrap_or(false);
                if killed {
                    return true;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

fn main() {
    let opts = Opts::parse(&[16, 24], &[1]);
    let problems = problem_set(&opts);

    // Worker re-invocation: the coordinator spawned us with the
    // BPMAX_COORD_* contract — claim and solve, never benchmark.
    if let Some(env) = coordinator::worker_env() {
        let code = match coordinator::run_worker(&problems, batch_opts(), &env) {
            Ok(()) => 0,
            Err(_) => 1,
        };
        std::process::exit(code);
    }

    let mut rep = Reporter::new("bench_coordinator", &opts);
    banner(
        "Coordinator",
        "multi-process shard coordinator throughput and crash recovery",
        "worker crashes cost a bounded respawn, never a wrong or missing score",
    );

    let count = problems.len();
    let total_flops: u64 = problems.iter().map(BpMaxProblem::flops).sum();
    println!(
        "\n{count} problems, sizes cycled from {:?}, {:.2} MFLOP total",
        opts.sizes,
        total_flops as f64 / 1e6
    );

    let scratch = std::env::temp_dir().join(format!("bpmax-bench-coord-{}", std::process::id()));
    let cmd = WorkerCommand {
        program: std::env::current_exe().expect("current_exe"),
        args: std::env::args().skip(1).collect(),
    };
    let run_coord = |workers: usize, dir: &Path| {
        let copts = CoordinatorOptions::new()
            .workers(workers)
            .backoff(Duration::from_millis(5), Duration::from_millis(40));
        coordinator::run(&problems, &batch_opts(), &copts, &cmd, dir).expect("coordinator run")
    };

    // Single-process baseline: the bit-identity reference and the
    // per-problem costs the simsched model consumes.
    let engine = BatchEngine::new(batch_opts()).expect("engine");
    let baseline = engine.solve_all(&problems).expect("baseline");
    let reps = opts.reps(3);
    let single_stats = time_stats(reps, || {
        engine.solve_all(&problems).expect("baseline").items.len()
    });
    rep.measured(
        "measured/single-process/t=1",
        single_stats,
        Some(total_flops),
    );
    rep.annotate(&[("problems", count as f64)]);

    let costs: Vec<f64> = baseline.items.iter().map(|it| it.seconds).collect();
    let serial_s: f64 = costs.iter().sum();

    let worker_counts: &[usize] = if opts.smoke { &[2] } else { &[2, 4] };
    let mut table = Table::new(&[
        "mode", "wall ms", "speedup", "model x", "respawns", "stolen",
    ]);
    table.row(vec![
        "single-process".into(),
        f2(single_stats.median_s * 1e3),
        f2(1.0),
        "-".into(),
        "0".into(),
        "0".into(),
    ]);

    let mut w2_median_s = f64::NAN;
    for &w in worker_counts {
        let dir = scratch.join(format!("w{w}"));
        let coord_stats = time_stats(reps, || {
            let r = run_coord(w, &dir);
            assert_bit_identical(&format!("coordinator w={w}"), &baseline, &r.report);
            assert!(r.respawns.is_empty(), "faultless run recorded a respawn");
            r.report.items.len()
        });
        let speedup = single_stats.median_s / coord_stats.median_s;
        if w == 2 {
            w2_median_s = coord_stats.median_s;
        }

        // The ideal W-lane makespan over the measured costs: dynamic
        // self-scheduling with chunk 1 is exactly the work-ledger's
        // claim discipline, minus every process/ledger overhead.
        let sim = simulate_parallel_for(&costs, w, OmpPolicy::Dynamic { chunk: 1 });
        let model_speedup = serial_s / sim.makespan.max(1e-12);

        rep.measured(
            format!("measured/coordinator/w={w}"),
            coord_stats,
            Some(total_flops),
        );
        // The simsched prediction rides as metrics on the measured
        // record (not a Kind::Modeled record): it is derived from this
        // run's measured per-problem costs, so pinning it as
        // "deterministic" would flag drift on every rerun.
        rep.annotate(&[
            ("workers", w as f64),
            ("speedup_vs_single", speedup),
            ("sim_speedup", model_speedup),
            ("sim_makespan_s", sim.makespan),
            ("sim_utilization", sim.utilization()),
        ]);
        table.row(vec![
            format!("coordinator w={w}"),
            f2(coord_stats.median_s * 1e3),
            f2(speedup),
            f2(model_speedup),
            "0".into(),
            "0".into(),
        ]);
    }

    // Recovery overhead: the same W=2 run with one worker SIGKILLed a
    // quarter of the way in. The merge must still be complete and
    // bit-identical; the wall-clock delta over the faultless run is the
    // price of detection + backoff + respawn + work stealing.
    let kill_dir = scratch.join("recovery-kill");
    std::fs::create_dir_all(&kill_dir).expect("scratch dir");
    let stop = Arc::new(AtomicBool::new(false));
    let killer = {
        let dir = kill_dir.clone();
        let stop = Arc::clone(&stop);
        let after = count / 4;
        std::thread::spawn(move || kill_one_worker(&dir, after, &stop))
    };
    // Timed by hand (not `time_stats`): its warm-up call would absorb
    // the one kill the killer thread lands.
    let t = std::time::Instant::now();
    let recovered = run_coord(2, &kill_dir);
    let killed_stats = bench::TimeStats {
        reps: 1,
        median_s: t.elapsed().as_secs_f64(),
        mad_s: 0.0,
    };
    // ordering: Relaxed — see kill_one_worker
    stop.store(true, Ordering::Relaxed);
    let killed = killer.join().expect("killer thread");
    assert_bit_identical("coordinator under SIGKILL", &baseline, &recovered.report);
    if killed {
        assert!(
            !recovered.respawns.is_empty(),
            "a mid-run SIGKILL must be detected and respawned"
        );
    } else {
        println!("note: run finished before the kill landed — recovery path not exercised");
    }
    let recovery_overhead_s = (killed_stats.median_s - w2_median_s).max(0.0);
    // A single-shot wall time (the kill only lands once) would flap the
    // regression gate, so the recovery run is pinned as metrics — the
    // gate reports them as drift, never as a wall-clock regression.
    rep.values(
        "measured/coordinator-recovery/w=2",
        Kind::Measured,
        &[
            ("wall_s", killed_stats.median_s),
            ("recovery_overhead_s", recovery_overhead_s),
            ("kill_landed", f64::from(u8::from(killed))),
            ("respawns", recovered.respawns.len() as f64),
            ("stolen", recovered.stolen as f64),
        ],
    );
    table.row(vec![
        "coordinator w=2 +SIGKILL".into(),
        f2(killed_stats.median_s * 1e3),
        f2(single_stats.median_s / killed_stats.median_s),
        "-".into(),
        recovered.respawns.len().to_string(),
        recovered.stolen.to_string(),
    ]);

    println!();
    table.print();
    println!(
        "\nrecovery overhead: {} ms over the faultless coordinated run (kill landed: {killed})",
        f2(recovery_overhead_s * 1e3)
    );

    let _ = std::fs::remove_dir_all(&scratch);
    let path = rep.finish();
    println!("wrote {}", path.display());
}
