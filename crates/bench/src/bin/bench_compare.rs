//! `bench_compare` — the performance-regression gate.
//!
//! Diffs a candidate telemetry directory (fresh `results/json`-style
//! reports) against a pinned baseline (`results/baseline/`, checked into
//! the repository) and exits non-zero when any wall-clock measurement
//! regressed beyond the noise-aware threshold
//!
//! ```text
//! threshold = max(mad_mult × max(MAD_base, MAD_cand), rel_floor × median_base)
//! ```
//!
//! so a record only fails the gate when it is slower by more than both
//! its own run-to-run noise (median absolute deviation, scaled) and a
//! relative floor. Deterministic records (modeled / simulated / static
//! kinds) are never wall-clock-gated; they are reported as *drift* when
//! they change at all, which points at a model or codegen change that
//! needs `--update-baseline` after review.
//!
//! ```text
//! bench_compare --baseline results/baseline --candidate results/ci_json
//! bench_compare ... --update-baseline     # re-pin after a reviewed change
//! ```
//!
//! Exit codes: 0 clean, 1 regression(s), 2 usage or I/O error.

use bench::report::{Kind, Measurement, Report};
use bench::{f1, f2};
use std::path::PathBuf;

const USAGE: &str = "usage: bench_compare --baseline DIR --candidate DIR \
[--rel-floor F] [--mad-mult K] [--update-baseline]
  --rel-floor F       relative slowdown floor before a regression fires (default 0.30)
  --mad-mult K        noise multiplier on the median absolute deviation (default 3.0)
  --update-baseline   copy the candidate reports over the baseline and exit
exit codes: 0 = clean, 1 = regression(s), 2 = usage/IO error";

struct Args {
    baseline: PathBuf,
    candidate: PathBuf,
    rel_floor: f64,
    mad_mult: f64,
    update_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut candidate = None;
    let mut rel_floor: f64 = 0.30;
    let mut mad_mult: f64 = 3.0;
    let mut update_baseline = false;
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value()?)),
            "--candidate" => candidate = Some(PathBuf::from(value()?)),
            "--rel-floor" => {
                let v = value()?;
                rel_floor = v
                    .parse()
                    .map_err(|e| format!("invalid --rel-floor '{v}': {e}"))?;
                if rel_floor.is_nan() || rel_floor < 0.0 {
                    return Err("--rel-floor must be non-negative".to_string());
                }
            }
            "--mad-mult" => {
                let v = value()?;
                mad_mult = v
                    .parse()
                    .map_err(|e| format!("invalid --mad-mult '{v}': {e}"))?;
                if mad_mult.is_nan() || mad_mult < 0.0 {
                    return Err("--mad-mult must be non-negative".to_string());
                }
            }
            "--update-baseline" => update_baseline = true,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("missing --baseline DIR")?,
        candidate: candidate.ok_or("missing --candidate DIR")?,
        rel_floor,
        mad_mult,
        update_baseline,
    })
}

/// Outcome of comparing one measurement pair.
enum Verdict {
    /// Slower beyond the threshold.
    Regression { detail: String },
    /// Faster beyond the threshold (informational).
    Improvement { detail: String },
    /// Within noise.
    Ok,
    /// Deterministic record changed (model/simulator/static drift).
    Drift { detail: String },
    /// Not comparable (no overlapping statistics).
    Skipped,
}

fn compare_measurement(base: &Measurement, cand: &Measurement, args: &Args) -> Verdict {
    if base.kind == Kind::Measured || cand.kind == Kind::Measured {
        if let (Some(bm), Some(cm)) = (base.median_s, cand.median_s) {
            let noise = args.mad_mult * base.mad_s.unwrap_or(0.0).max(cand.mad_s.unwrap_or(0.0));
            let threshold = noise.max(args.rel_floor * bm);
            let delta = cm - bm;
            let detail = format!(
                "median {:.6}s -> {:.6}s ({:+.1}%, threshold ±{})",
                bm,
                cm,
                100.0 * delta / bm,
                f1(100.0 * threshold / bm)
            );
            return if delta > threshold {
                Verdict::Regression { detail }
            } else if -delta > threshold {
                Verdict::Improvement { detail }
            } else {
                Verdict::Ok
            };
        }
        if let (Some(bg), Some(cg)) = (base.gflops, cand.gflops) {
            // Self-timed rates (e.g. the streaming micro-benchmark):
            // higher is better, only the relative floor applies.
            let threshold = args.rel_floor * bg;
            let detail = format!(
                "{} -> {} GFLOPS ({:+.1}%, floor {}%)",
                f2(bg),
                f2(cg),
                100.0 * (cg - bg) / bg,
                f1(100.0 * args.rel_floor)
            );
            return if bg - cg > threshold {
                Verdict::Regression { detail }
            } else if cg - bg > threshold {
                Verdict::Improvement { detail }
            } else {
                Verdict::Ok
            };
        }
        return Verdict::Skipped;
    }
    // Deterministic kinds: any numeric change at all is drift.
    let differs = |a: Option<f64>, b: Option<f64>| match (a, b) {
        (Some(a), Some(b)) => relative_diff(a, b) > 1e-9,
        (None, None) => false,
        _ => true,
    };
    if differs(base.gflops, cand.gflops) {
        return Verdict::Drift {
            detail: format!(
                "gflops {} -> {}",
                base.gflops.map_or("none".to_string(), f2),
                cand.gflops.map_or("none".to_string(), f2)
            ),
        };
    }
    for (key, bv) in &base.metrics {
        let cv = cand.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v);
        match cv {
            Some(cv) if relative_diff(*bv, cv) <= 1e-9 => {}
            Some(cv) => {
                return Verdict::Drift {
                    detail: format!("metric '{key}' {bv} -> {cv}"),
                }
            }
            None => {
                return Verdict::Drift {
                    detail: format!("metric '{key}' disappeared"),
                }
            }
        }
    }
    Verdict::Ok
}

fn relative_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

fn update_baseline(args: &Args) -> Result<(), String> {
    std::fs::create_dir_all(&args.baseline)
        .map_err(|e| format!("creating {}: {e}", args.baseline.display()))?;
    let mut copied = 0usize;
    for report in Report::load_dir(&args.candidate)? {
        let name = format!("{}.json", report.artifact);
        let from = args.candidate.join(&name);
        let to = args.baseline.join(&name);
        std::fs::copy(&from, &to)
            .map_err(|e| format!("copying {} -> {}: {e}", from.display(), to.display()))?;
        copied += 1;
    }
    println!(
        "pinned {copied} report(s) from {} into {}",
        args.candidate.display(),
        args.baseline.display()
    );
    Ok(())
}

fn run(args: &Args) -> Result<i32, String> {
    if args.update_baseline {
        update_baseline(args)?;
        return Ok(0);
    }
    let candidates = Report::load_dir(&args.candidate)?;
    if candidates.is_empty() {
        return Err(format!(
            "no candidate reports in {}",
            args.candidate.display()
        ));
    }

    let mut regressions: Vec<String> = Vec::new();
    let mut improvements: Vec<String> = Vec::new();
    let mut drifts: Vec<String> = Vec::new();
    let mut new_artifacts: Vec<String> = Vec::new();
    let mut new_ids = 0usize;
    let mut missing_ids = 0usize;
    let mut compared = 0usize;
    let mut cross_host_warned = false;

    for cand in &candidates {
        let path = args.baseline.join(format!("{}.json", cand.artifact));
        if !path.exists() {
            new_artifacts.push(cand.artifact.clone());
            continue;
        }
        let base = Report::load(&path)?;
        if !cross_host_warned
            && (base.meta.rustc != cand.meta.rustc || base.meta.host_cores != cand.meta.host_cores)
        {
            eprintln!(
                "warning: baseline was recorded on a different toolchain/host \
                 ({} / {} cores vs {} / {} cores); wall-clock thresholds may be \
                 meaningless — consider --update-baseline on this machine",
                base.meta.rustc, base.meta.host_cores, cand.meta.rustc, cand.meta.host_cores
            );
            cross_host_warned = true;
        }
        for cm in &cand.measurements {
            let Some(bm) = base.find(&cm.id) else {
                new_ids += 1;
                continue;
            };
            compared += 1;
            let tag = format!("{}: {}", cand.artifact, cm.id);
            match compare_measurement(bm, cm, args) {
                Verdict::Regression { detail } => regressions.push(format!("{tag}: {detail}")),
                Verdict::Improvement { detail } => improvements.push(format!("{tag}: {detail}")),
                Verdict::Drift { detail } => drifts.push(format!("{tag}: {detail}")),
                Verdict::Ok | Verdict::Skipped => {}
            }
        }
        missing_ids += base
            .measurements
            .iter()
            .filter(|bm| cand.find(&bm.id).is_none())
            .count();
    }

    println!(
        "bench_compare: {} artifact(s), {compared} measurement(s) compared \
         (thresholds: max({}x MAD, {}% floor))",
        candidates.len() - new_artifacts.len(),
        args.mad_mult,
        f1(100.0 * args.rel_floor)
    );
    if !new_artifacts.is_empty() {
        println!(
            "  note: {} artifact(s) have no baseline yet ({}); run with --update-baseline to pin",
            new_artifacts.len(),
            new_artifacts.join(", ")
        );
    }
    if new_ids > 0 || missing_ids > 0 {
        println!("  note: {new_ids} new measurement id(s), {missing_ids} missing vs baseline");
    }
    for line in &drifts {
        println!("  drift: {line}");
    }
    if !drifts.is_empty() {
        println!(
            "  ({} deterministic record(s) changed — expected only after model/codegen \
             changes; re-pin with --update-baseline)",
            drifts.len()
        );
    }
    for line in &improvements {
        println!("  improvement: {line}");
    }
    if regressions.is_empty() {
        println!("  no wall-clock regressions");
        Ok(0)
    } else {
        for line in &regressions {
            println!("  REGRESSION: {line}");
        }
        println!(
            "bench_compare: {} regression(s) beyond threshold",
            regressions.len()
        );
        Ok(1)
    }
}

/// On a GitHub Actions runner, surface a fatal gate error as a workflow
/// `::error::` annotation so the step failure is readable in the checks
/// UI without digging through logs. No-op everywhere else.
fn annotate_error(title: &str, msg: &str) {
    if std::env::var_os("GITHUB_ACTIONS").is_some() {
        // Newlines terminate workflow commands; escape per the runner spec.
        let escaped = msg
            .replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A");
        println!("::error title={title}::{escaped}");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            annotate_error("bench_compare usage error", &e);
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            // I/O and parse failures (missing directory, corrupt
            // baseline JSON) are misuse, not regressions: same exit and
            // usage text as a bad flag.
            annotate_error("bench_compare usage error", &e);
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}
