//! Ablation — locality of schedules and memory maps, by cache simulation.
//!
//! Replaces the paper's hardware-counter arguments with simulated misses:
//!
//! 1. **Loop order** (Fig 13's why): execute the double max-plus in the
//!    naive (`k2` innermost) vs permuted (`j2` innermost) order at a small
//!    size, trace every `F` access through the packed memory map, and
//!    replay through the cache hierarchy. The permuted order's streaming
//!    reads must miss less.
//! 2. **Memory map** (Fig 10): same permuted instance order, inner
//!    triangle mapped by option 1 `(i2, j2)` vs option 2 `(i2, j2−i2)` vs
//!    packed; compare misses.

use bench::report::{Kind, Reporter};
use bench::{banner, f2, Opts, Table};
use bpmax::ftable::{FTable, Layout};
use machine::cache::CacheSim;
use machine::spec::MachineSpec;
use polyhedral::executor::Trace;

/// Trace the double max-plus over an `m × n` table in one of two loop
/// orders, mapping cells through `layout`.
fn trace_dmp(m: usize, n: usize, layout: Layout, j2_inner: bool) -> Trace {
    let ft = FTable::new(m, n, layout);
    let block_len = layout.storage_len(n) as i64;
    let addr = |i1: usize, j1: usize, i2: usize, j2: usize| -> i64 {
        ft.outer(i1, j1) as i64 * block_len + ft.inner(i2, j2) as i64
    };
    let mut trace = Trace::new();
    for d1 in 1..m {
        for i1 in 0..m - d1 {
            let j1 = i1 + d1;
            for k1 in i1..j1 {
                if j2_inner {
                    // (i2, k2, j2): streaming over j2
                    for i2 in 0..n {
                        for k2 in i2..n.saturating_sub(1) {
                            trace.read(addr(i1, k1, i2, k2));
                            for j2 in k2 + 1..n {
                                trace.read(addr(k1 + 1, j1, k2 + 1, j2));
                                trace.read(addr(i1, j1, i2, j2));
                                trace.write(addr(i1, j1, i2, j2));
                            }
                        }
                    }
                } else {
                    // (i2, j2, k2): dot products, strided B column
                    for i2 in 0..n {
                        for j2 in i2 + 1..n {
                            for k2 in i2..j2 {
                                trace.read(addr(i1, k1, i2, k2));
                                trace.read(addr(k1 + 1, j1, k2 + 1, j2));
                            }
                            trace.read(addr(i1, j1, i2, j2));
                            trace.write(addr(i1, j1, i2, j2));
                        }
                    }
                }
            }
        }
    }
    trace
}

fn simulate(trace: &Trace) -> (f64, u64) {
    let mut sim = CacheSim::new(&MachineSpec::tiny_test_machine());
    sim.replay(trace, 4);
    let l1 = sim.stats()[0];
    (l1.miss_ratio(), sim.dram_lines())
}

fn main() {
    let opts = Opts::parse(&[], &[]);
    let mut rep = Reporter::new("ablation_locality", &opts);
    banner(
        "Ablation",
        "schedule & memory-map locality via cache simulation",
        "permuted order streams (fewer misses); memory-map option 1 beats option 2 (Fig 10)",
    );
    let (m, n) = (6usize, 16usize);

    println!("\n--- loop order (packed layout, {m} x {n}, tiny test cache) ---");
    let mut t = Table::new(&["order", "accesses", "L1 miss ratio", "DRAM lines"]);
    for (label, j2_inner) in [("naive (k2 inner)", false), ("permuted (j2 inner)", true)] {
        let trace = trace_dmp(m, n, Layout::Packed, j2_inner);
        let (miss, dram) = simulate(&trace);
        rep.values(
            format!("simulated/order/{label}"),
            Kind::Simulated,
            &[
                ("accesses", trace.len() as f64),
                ("l1_miss_ratio", miss),
                ("dram_lines", dram as f64),
            ],
        );
        t.row(vec![
            label.to_string(),
            trace.len().to_string(),
            f2(miss),
            dram.to_string(),
        ]);
    }
    t.print();

    println!("\n--- memory map (permuted order) ---");
    let mut t = Table::new(&["map", "storage elems/block", "L1 miss ratio", "DRAM lines"]);
    for (label, layout) in [
        ("option 1: (i2, j2) bounding box", Layout::Identity),
        ("option 2: (i2, j2-i2) shifted", Layout::Shifted),
        ("packed triangle", Layout::Packed),
    ] {
        let trace = trace_dmp(m, n, layout, true);
        let (miss, dram) = simulate(&trace);
        rep.values(
            format!("simulated/map/{label}"),
            Kind::Simulated,
            &[
                ("storage_elems", layout.storage_len(n) as f64),
                ("l1_miss_ratio", miss),
                ("dram_lines", dram as f64),
            ],
        );
        t.row(vec![
            label.to_string(),
            layout.storage_len(n).to_string(),
            f2(miss),
            dram.to_string(),
        ]);
    }
    t.print();
    println!("\n(miss ratios, not wall-clock: the simulator replaces uncore counters.");
    println!(" option 1 vs option 2 show near-identical simulated misses — the paper's");
    println!(" wall-clock win for option 1 comes from row alignment for the vector units,");
    println!(" which a cache simulator cannot see; the packed map wins on footprint.)");
    rep.finish();
}
