//! Fig 11 — roofline of the Xeon E5-1650v4 (and the E-2278G check).
//!
//! Regenerates the roofline series (one roof per memory level at 6/12
//! threads), the theoretical max-plus peak (~346 GFLOPS), and the `BPMax`
//! streaming point at arithmetic intensity 1/6.

use bench::report::Reporter;
use bench::{banner, f1, f2, Opts, Table};
use machine::roofline::{Roofline, MAXPLUS_STREAM_AI};
use machine::spec::MachineSpec;

fn main() {
    let opts = Opts::parse(&[], &[]);
    let mut rep = Reporter::new("fig11_roofline", &opts);
    banner(
        "Fig 11",
        "roofline model (max-plus, single precision)",
        "peak ~346 GFLOPS on E5-1650v4; L1 roof at AI=1/6 ~329 GFLOPS; DRAM roof 12.8 GFLOPS",
    );
    for spec in [MachineSpec::xeon_e5_1650v4(), MachineSpec::xeon_e_2278g()] {
        for threads in [spec.cores, spec.threads] {
            let r = Roofline::new(spec.clone(), threads);
            println!(
                "\n{} @ {} threads — max-plus peak {} GFLOPS",
                spec.name,
                threads,
                f1(r.peak())
            );
            rep.modeled_gflops(format!("modeled/{}/t={threads}/peak", spec.name), r.peak());
            let mut t = Table::new(&["roof", "BW GB/s", "ridge AI", "GFLOPS @ AI=1/6"]);
            for roof in r.roofs() {
                rep.modeled_gflops(
                    format!("modeled/{}/t={threads}/roof={}", spec.name, roof.name),
                    r.attainable(&roof.name, MAXPLUS_STREAM_AI),
                );
                rep.annotate(&[("bw_gbps", roof.bw_gbps), ("ridge_ai", r.ridge(&roof.name))]);
                t.row(vec![
                    roof.name.clone(),
                    f1(roof.bw_gbps),
                    f2(r.ridge(&roof.name)),
                    f1(r.attainable(&roof.name, MAXPLUS_STREAM_AI)),
                ]);
            }
            t.print();
            // A short series for plotting (log-spaced AI).
            let series = r.series("L1", 1.0 / 64.0, 8.0, 8);
            let pts: Vec<String> = series
                .iter()
                .map(|(ai, g)| format!("({}, {})", f2(*ai), f1(*g)))
                .collect();
            println!("L1 series (AI, GFLOPS): {}", pts.join(" "));
        }
    }
    println!(
        "\nBPMax streaming pattern Y = max(a+X, Y): AI = 2 FLOP / 12 B = {MAXPLUS_STREAM_AI:.4}"
    );
    rep.finish();
}
