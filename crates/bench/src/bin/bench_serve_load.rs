//! Solve-daemon saturation: aggregate throughput under concurrent
//! clients, and overload behaviour at a deliberately tiny capacity.
//!
//! Three measured phases against an in-process [`Server`] on a real
//! Unix socket:
//!
//! 1. **Serial baseline** — one persistent client solves a pass of
//!    fresh problems back to back. This is the throughput of the
//!    pre-concurrency daemon, which handled one connection at a time.
//! 2. **Concurrent** — the same pass shape split across 4 client
//!    threads. The daemon admits them in parallel (bounded only by its
//!    in-flight ledger, unbounded here), so aggregate throughput should
//!    beat the serial baseline wherever more than one core exists. The
//!    headline ratio is asserted with a core-count-aware floor: >=2x
//!    with 4+ cores, >=1.2x with 2-3, and a permissive sanity floor on
//!    a single core, where concurrency can only add scheduling overhead.
//!    Every concurrent score is asserted bit-identical to a direct
//!    in-process solve — concurrency must change wall-clock, never bits.
//! 3. **Overload** — a daemon squeezed to `max_inflight = 1` with no
//!    queue, hammered by 4 clients using [`Client::solve_with_retry`].
//!    Requests are shed with the typed overloaded rejection and the
//!    clients' capped jittered backoff recovers every one of them:
//!    all answers arrive, all bit-identical. Shedding plus retry must
//!    degrade latency, never correctness.
//!
//! Cold timing note: the daemon memoizes every solve, so each timed
//! repetition consumes a fresh slice of a pregenerated problem pool
//! (cache hits would measure the cache, not the solver).

use bench::report::Reporter;
use bench::{banner, f2, model, time_stats, workload, Opts, Table};
use bpmax::serve::{
    Client, RejectReason, Response, RetryPolicy, Server, ServerConfig, SolveRequest,
};
use bpmax::{BpMaxProblem, SolveOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;

fn solved(resp: Response) -> f32 {
    match resp {
        Response::Solved { score, .. } => score,
        other => panic!("expected Solved, got {other:?}"),
    }
}

/// Start a daemon on its own thread and wait until the socket accepts.
fn start(cfg: ServerConfig) -> (Arc<Server>, std::thread::JoinHandle<()>) {
    let server = Arc::new(Server::new(cfg).expect("server"));
    let runner = Arc::clone(&server);
    let handle = std::thread::spawn(move || runner.run().expect("daemon"));
    let deadline = Instant::now() + Duration::from_secs(10);
    while Client::connect(&server.cfg().socket).is_err() {
        assert!(Instant::now() < deadline, "daemon never came up");
        std::thread::sleep(Duration::from_millis(5));
    }
    (server, handle)
}

/// Fresh, distinct problems: one per request of every timed repetition.
fn pool(opts: &Opts, tag: u64, count: usize) -> Vec<SolveRequest> {
    (0..count)
        .map(|i| {
            let m = opts.sizes[i % opts.sizes.len()];
            let n = opts.sizes[(i / opts.sizes.len() + i) % opts.sizes.len()];
            let (s1, s2) = workload(opts.seed ^ tag ^ (i as u64) << 32, m, n);
            SolveRequest::new(s1, s2, model())
        })
        .collect()
}

/// Direct in-process reference solve — the bits the daemon must match.
fn reference(req: &SolveRequest) -> f32 {
    BpMaxProblem::new(req.seq1.clone(), req.seq2.clone(), req.model.clone())
        .solve_opts(&SolveOptions::new())
        .expect("direct solve")
        .score()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let at = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[at]
}

fn main() {
    let opts = Opts::parse(&[12, 16], &[CLIENTS]);
    let mut rep = Reporter::new("bench_serve_load", &opts);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    banner(
        "ServeLoad",
        "daemon throughput under concurrent clients + overload shedding",
        "concurrent aggregate throughput beats one-at-a-time serving",
    );

    let per_pass = if opts.smoke {
        8
    } else if opts.full {
        48
    } else {
        24
    };
    let reps = opts.reps(5);
    println!(
        "\n{per_pass} requests per pass, {CLIENTS} clients in the concurrent phase, \
         {cores} core(s), sizes cycled from {:?}",
        opts.sizes
    );

    // ---- phase 1: serial baseline -------------------------------------
    let serial_pool = pool(&opts, 0x5E71A1, per_pass * (reps + 1));
    let dir = std::env::temp_dir().join(format!("bpmax-bench-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let (server, daemon) = start(ServerConfig {
        socket: dir.join("serial.sock"),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server.cfg().socket).expect("connect");
    let next = AtomicUsize::new(0);
    let serial_stats = time_stats(reps, || {
        let at = next.fetch_add(per_pass, Ordering::Relaxed); // ordering: single-threaded cursor over the pool
        serial_pool[at..at + per_pass]
            .iter()
            .map(|r| solved(client.solve(r).expect("serial solve")))
            .sum::<f32>()
    });
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
    rep.measured("measured/serve-load-serial/t=1", serial_stats, None);
    rep.annotate(&[
        ("requests", per_pass as f64),
        ("rps", per_pass as f64 / serial_stats.median_s),
    ]);

    // ---- phase 2: concurrent clients, same pass shape -----------------
    let conc_pool = Arc::new(pool(&opts, 0xC0C0A, per_pass * (reps + 1)));
    let (server, daemon) = start(ServerConfig {
        socket: dir.join("concurrent.sock"),
        ..ServerConfig::default()
    });
    let socket: Arc<PathBuf> = Arc::new(server.cfg().socket.clone());
    // (pool index, score, seconds) per request; verified bit-identical
    // against direct solves *after* the timed passes — the reference
    // solver must not run inside the measurement.
    let answers: Arc<Mutex<Vec<(usize, f32, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let pass = AtomicUsize::new(0);
    let conc_stats = time_stats(reps, || {
        let base = pass.fetch_add(per_pass, Ordering::Relaxed); // ordering: one cursor bump per timed pass
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let (pool, socket, answers) = (&conc_pool, &socket, &answers);
                scope.spawn(move || {
                    let mut client = Client::connect(socket.as_path()).expect("connect");
                    // client c takes every CLIENTS-th problem of the pass
                    let mut got = Vec::new();
                    for i in (c..per_pass).step_by(CLIENTS) {
                        let req = &pool[base + i];
                        let t0 = Instant::now();
                        let score = solved(client.solve(req).expect("concurrent solve"));
                        got.push((base + i, score, t0.elapsed().as_secs_f64()));
                    }
                    answers.lock().expect("answers lock").extend(got);
                });
            }
        });
    });
    let conc_server_stats = server.stats();
    for &(i, score, _) in answers.lock().expect("answers lock").iter() {
        assert_eq!(
            score.to_bits(),
            reference(&conc_pool[i]).to_bits(),
            "concurrent answer diverged from the lib"
        );
    }
    Client::connect(socket.as_path())
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    daemon.join().expect("daemon thread");

    let mut lat: Vec<f64> = answers
        .lock()
        .expect("answers lock")
        .iter()
        .map(|&(_, _, s)| s)
        .collect();
    lat.sort_by(f64::total_cmp);
    let (p50_us, p99_us) = (1e6 * percentile(&lat, 0.50), 1e6 * percentile(&lat, 0.99));
    let speedup = serial_stats.median_s / conc_stats.median_s;
    rep.measured(
        format!("measured/serve-load-concurrent/t={CLIENTS}"),
        conc_stats,
        None,
    );
    rep.annotate(&[
        ("requests", per_pass as f64),
        ("rps", per_pass as f64 / conc_stats.median_s),
        ("speedup_vs_serial", speedup),
        ("cores", cores as f64),
        ("latency_p50_us", p50_us),
        ("latency_p99_us", p99_us),
        ("shed", conc_server_stats.shed as f64),
    ]);
    assert_eq!(
        conc_server_stats.shed, 0,
        "an unbounded ledger must not shed"
    );

    // ---- phase 3: overload — shed, retry, recover ---------------------
    let over_pool = pool(&opts, 0x0BAD, CLIENTS * per_pass.min(8));
    let each = over_pool.len() / CLIENTS;
    let (server, daemon) = start(ServerConfig {
        socket: dir.join("overload.sock"),
        max_inflight: Some(1),
        queue_depth: Some(0),
        queue_wait: Some(Duration::from_millis(5)),
        ..ServerConfig::default()
    });
    let socket: Arc<PathBuf> = Arc::new(server.cfg().socket.clone());
    let over_pool = Arc::new(over_pool);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (pool, socket) = (&over_pool, &socket);
            scope.spawn(move || {
                let policy = RetryPolicy {
                    attempts: 16,
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(50),
                    seed: 0xB0FF + c as u64,
                };
                for req in &pool[c * each..(c + 1) * each] {
                    let resp = Client::solve_with_retry(socket.as_path(), req, policy)
                        .expect("retry budget exhausted under overload");
                    if let Response::Rejected(RejectReason::Overloaded { .. }) = resp {
                        panic!("solve_with_retry returned a shed as Ok");
                    }
                    assert_eq!(
                        solved(resp).to_bits(),
                        reference(req).to_bits(),
                        "retried answer diverged from the lib"
                    );
                }
            });
        }
    });
    let over_wall = t0.elapsed().as_secs_f64();
    let over_server_stats = server.stats();
    Client::connect(socket.as_path())
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
    rep.annotate(&[
        ("overload_requests", over_pool.len() as f64),
        ("overload_wall_s", over_wall),
        ("overload_shed", over_server_stats.shed as f64),
    ]);
    if cores >= 2 {
        assert!(
            over_server_stats.shed >= 1,
            "4 clients against a 1-slot, 0-queue daemon must shed at least once"
        );
    }

    // ---- verdict ------------------------------------------------------
    let mut t = Table::new(&["phase", "median s / pass", "requests / s"]);
    for (name, s) in [
        ("serial (1 client)", serial_stats),
        ("concurrent (4 clients)", conc_stats),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:.6}", s.median_s),
            f2(per_pass as f64 / s.median_s),
        ]);
    }
    t.print();
    println!(
        "\nconcurrent aggregate throughput: {speedup:.2}x the serial baseline \
         on {cores} core(s); p50 {p50_us:.0} us, p99 {p99_us:.0} us per request; \
         overload phase shed {} request(s), every one recovered by retry with \
         bit-identical answers",
        over_server_stats.shed
    );
    // The floor scales with what the machine can actually deliver: real
    // parallel speedup needs real cores; on one core the assertion only
    // guards against pathological serialization overhead.
    let floor = if cores >= 4 {
        2.0
    } else if cores >= 2 {
        1.2
    } else {
        0.6
    };
    assert!(
        speedup >= floor,
        "aggregate throughput at {CLIENTS} clients must be >={floor:.1}x the \
         serial baseline on {cores} core(s), got {speedup:.2}x"
    );
    rep.finish();
}
