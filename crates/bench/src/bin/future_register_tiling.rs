//! Register-level tiling of the double max-plus — the roofline sketch.
//!
//! The paper's conclusion: "the double max-plus operation remains
//! bandwidth-bound even after tiling... an additional level of tiling at
//! the register level is required to make the program compute-bound."
//! `bpmax::kernels::r0_instance_reg` implements it: the `k2` loop is
//! unrolled 4×, so four fused updates share one load/store of the
//! accumulator row — arithmetic intensity rises from 1/6 to ~1/3
//! FLOP/byte, doubling the bandwidth-roof ceiling.
//!
//! This is no longer future work: the headline *measurement* of the
//! explicitly vectorized kernel (lane-array `mp_axpy4`, `R0Order::SimdReg`,
//! runtime bit-identity assertions) lives in `bench_simd_kernel`. This
//! binary is kept as the roofline-model view plus the LLVM-autovectorized
//! comparison column.

use bench::dmp::{dmp_flops, dmp_solve};
use bench::report::Reporter;
use bench::{banner, f2, gflops, time_stats, Opts, Table};
use bpmax::ftable::Layout;
use bpmax::kernels::{R0Order, Tile};
use machine::roofline::Roofline;
use machine::spec::MachineSpec;

fn main() {
    let opts = Opts::parse(&[24, 32, 48], &[]);
    let mut rep = Reporter::new("future_register_tiling", &opts);
    banner(
        "Register tiling (roofline view)",
        "register-level tiling of the double max-plus",
        "conclusion: 'an additional level of tiling at the register level is required'",
    );
    println!("(the explicit-SIMD measurement of this kernel is bench_simd_kernel)");

    // Roofline view: the intensity gain doubles the bandwidth ceiling.
    let spec = MachineSpec::xeon_e5_1650v4();
    let roof = Roofline::new(spec, 6);
    println!(
        "\nattainable through L2 at AI=1/6: {} GFLOPS; at AI=1/3: {} GFLOPS",
        f2(roof.attainable("L2", 1.0 / 6.0)),
        f2(roof.attainable("L2", 1.0 / 3.0)),
    );
    rep.modeled_gflops("modeled/roof-l2/ai=1-6", roof.attainable("L2", 1.0 / 6.0));
    rep.modeled_gflops("modeled/roof-l2/ai=1-3", roof.attainable("L2", 1.0 / 3.0));

    println!("\n--- measured, 1 thread, this machine ---");
    let mut t = Table::new(&[
        "M=N",
        "permuted",
        "cache-tiled",
        "reg-unrolled",
        "reg/permuted",
    ]);
    for &n in &opts.sizes {
        let flops = dmp_flops(n, n);
        let reps = opts.reps(if n <= 24 { 3 } else { 1 });
        let s_perm = time_stats(reps, || dmp_solve(n, n, R0Order::Permuted, Layout::Packed));
        let s_tiled = time_stats(reps, || {
            dmp_solve(n, n, R0Order::Tiled(Tile::small()), Layout::Packed)
        });
        let s_reg = time_stats(reps, || dmp_solve(n, n, R0Order::RegTiled, Layout::Packed));
        rep.measured(
            format!("measured/permuted/m={n},n={n}"),
            s_perm,
            Some(flops),
        );
        rep.measured(
            format!("measured/cache-tiled/m={n},n={n}"),
            s_tiled,
            Some(flops),
        );
        rep.measured(
            format!("measured/reg-unrolled/m={n},n={n}"),
            s_reg,
            Some(flops),
        );
        rep.annotate(&[("speedup_vs_permuted", s_perm.median_s / s_reg.median_s)]);
        t.row(vec![
            n.to_string(),
            f2(gflops(flops, s_perm.median_s)),
            f2(gflops(flops, s_tiled.median_s)),
            f2(gflops(flops, s_reg.median_s)),
            f2(s_perm.median_s / s_reg.median_s),
        ]);
    }
    t.print();
    println!("\n(all three orders are asserted equal on checksums by the test-suite)");
    rep.finish();
}
