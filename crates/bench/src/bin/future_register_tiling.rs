//! Future-work experiment — register-level tiling of the double max-plus.
//!
//! The paper's conclusion: "the double max-plus operation remains
//! bandwidth-bound even after tiling... an additional level of tiling at
//! the register level is required to make the program compute-bound."
//! `bpmax::kernels::r0_instance_reg` implements it: the `k2` loop is
//! unrolled 4×, so four fused updates share one load/store of the
//! accumulator row — arithmetic intensity rises from 1/6 to ~1/3
//! FLOP/byte, doubling the bandwidth-roof ceiling.

use bench::dmp::{dmp_flops, dmp_solve};
use bench::{banner, f2, gflops, time_median, Opts, Table};
use bpmax::ftable::Layout;
use bpmax::kernels::{R0Order, Tile};
use machine::roofline::Roofline;
use machine::spec::MachineSpec;

fn main() {
    let opts = Opts::parse(&[24, 32, 48], &[]);
    banner(
        "Future work",
        "register-level tiling of the double max-plus",
        "conclusion: 'an additional level of tiling at the register level is required'",
    );

    // Roofline view: the intensity gain doubles the bandwidth ceiling.
    let spec = MachineSpec::xeon_e5_1650v4();
    let roof = Roofline::new(spec, 6);
    println!(
        "\nattainable through L2 at AI=1/6: {} GFLOPS; at AI=1/3: {} GFLOPS",
        f2(roof.attainable("L2", 1.0 / 6.0)),
        f2(roof.attainable("L2", 1.0 / 3.0)),
    );

    println!("\n--- measured, 1 thread, this machine ---");
    let mut t = Table::new(&[
        "M=N",
        "permuted",
        "cache-tiled",
        "reg-unrolled",
        "reg/permuted",
    ]);
    for &n in &opts.sizes {
        let flops = dmp_flops(n, n);
        let reps = if n <= 24 { 3 } else { 1 };
        let t_perm = time_median(reps, || dmp_solve(n, n, R0Order::Permuted, Layout::Packed));
        let t_tiled = time_median(reps, || {
            dmp_solve(n, n, R0Order::Tiled(Tile::small()), Layout::Packed)
        });
        let t_reg = time_median(reps, || dmp_solve(n, n, R0Order::RegTiled, Layout::Packed));
        t.row(vec![
            n.to_string(),
            f2(gflops(flops, t_perm)),
            f2(gflops(flops, t_tiled)),
            f2(gflops(flops, t_reg)),
            f2(t_perm / t_reg),
        ]);
    }
    t.print();
    println!("\n(all three orders are asserted equal on checksums by the test-suite)");
}
