//! Fig 13 — double max-plus performance by schedule, across sizes.
//!
//! Measured part: the real kernel at 1 thread in each loop order on this
//! machine. Modeled part: the five paper curves (base, coarse, fine
//! diagonal, fine bottom-up, tiled) at 6 threads on the paper's Xeon,
//! from the calibrated cost model + `simsched` (DESIGN.md §3).
//! Expected shape: coarse worst by far (DRAM traffic), fine variants
//! close, tiled on top (paper: 117 GFLOPS, 97% of the micro-benchmark).

use bench::dmp::{dmp_flops, dmp_solve};
use bench::report::Reporter;
use bench::{banner, f2, gflops, time_stats, Opts, Table};
use bpmax::ftable::Layout;
use bpmax::kernels::{R0Order, Tile};
use bpmax::perfmodel::{predict_dmp_gflops, CostModel, DmpVariant};
use machine::spec::MachineSpec;
use simsched::speedup::HtModel;

fn main() {
    let opts = Opts::parse(&[12, 16, 24, 32], &[6]);
    let mut rep = Reporter::new("fig13_dmp_perf", &opts);
    banner(
        "Fig 13",
        "double max-plus performance comparison",
        "coarse-grain performs very poorly; tiling reaches 117 GFLOPS (~97% of the micro-benchmark)",
    );

    println!("\n--- measured, 1 thread, this machine ---");
    let mut t = Table::new(&["M=N", "naive", "permuted", "tiled 32x4xN", "tiled 64x16xN"]);
    for &n in &opts.sizes {
        let flops = dmp_flops(n, n);
        let reps = opts.reps(if n <= 16 { 3 } else { 1 });
        let mut cells = vec![n.to_string()];
        for (label, order) in [
            ("naive", R0Order::Naive),
            ("permuted", R0Order::Permuted),
            ("tiled 32x4xN", R0Order::Tiled(Tile::small())),
            ("tiled 64x16xN", R0Order::Tiled(Tile::default())),
        ] {
            let stats = time_stats(reps, || dmp_solve(n, n, order, Layout::Packed));
            rep.measured(format!("measured/{label}/m={n},n={n}"), stats, Some(flops));
            rep.annotate(&[("m", n as f64), ("n", n as f64)]);
            cells.push(f2(gflops(flops, stats.median_s)));
        }
        t.row(cells);
    }
    t.print();

    println!(
        "\n--- modeled, {} threads, {} ---",
        opts.threads[0],
        MachineSpec::xeon_e5_1650v4().name
    );
    let cm = CostModel::nominal(); // representative per-core Xeon rates (see perfmodel)
    let spec = MachineSpec::xeon_e5_1650v4();
    let ht = HtModel {
        physical: spec.cores,
        smt_efficiency: 0.15,
    };
    let threads = opts.threads[0];
    let sizes: Vec<usize> = if opts.full {
        vec![64, 128, 256, 512, 1024, 2048]
    } else {
        vec![64, 128, 256, 512, 1024]
    };
    let mut header = vec!["M=N".to_string()];
    header.extend(DmpVariant::all().iter().map(|v| v.label().to_string()));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for &n in &sizes {
        let mut cells = vec![n.to_string()];
        for v in DmpVariant::all() {
            let g = predict_dmp_gflops(v, n, n, threads, &cm, &spec, ht);
            rep.modeled_gflops(format!("modeled/{}/t={threads}/n={n}", v.label()), g);
            cells.push(f2(g));
        }
        t.row(cells);
    }
    t.print();
    rep.finish();
}
