//! Measured SIMD register-tiled max-plus kernel — the paper's "future
//! work" register tiling, implemented and measured.
//!
//! Three layers, all on this machine at 1 thread:
//!
//! 1. **Stream kernel (headline).** The 4-way fused lane-array kernel
//!    [`tropical::simd::mp_axpy4`] over L1-resident rows: four fused
//!    `Y = max(a_r + X_r, Y)` updates share one load/store of the
//!    accumulator row, so arithmetic intensity doubles and the kernel
//!    runs at the vector-unit rate instead of the store-port rate.
//! 2. **Solve kernel.** The same kernel inside the triangular double
//!    max-plus instance (`R0Order::SimdReg`) versus the cache-tiled
//!    order — the trajectory point the acceptance gate pins.
//! 3. **Bit-identity.** Every R0 order agrees on the dmp checksum and
//!    all six program versions (SIMD on *and* off) agree with the
//!    memoized specification oracle — asserted at runtime, every run.
//!
//! The lane-array kernels are always compiled; the `simd` cargo feature
//! only flips the solve-path default, so this binary measures the same
//! code under any feature set.

use bench::dmp::{dmp_flops, dmp_solve};
use bench::report::Reporter;
use bench::{banner, f2, gflops, model, time_stats, workload, Opts, Table};
use bpmax::ftable::Layout;
use bpmax::kernels::{R0Order, Tile};
use bpmax::spec::spec_score;
use bpmax::{Algorithm, BpMaxProblem, SolveOptions};
use std::time::Instant;
use tropical::scalar::mp_axpy_scalar;
use tropical::simd::{mp_axpy4, mp_axpy_lanes};

/// Deterministic fill in `[-60, 65)` (same family as the dmp seeding).
fn filled(seed: u64, n: usize) -> Vec<f32> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f32) / 8.0 - 60.0
        })
        .collect()
}

/// Per-sweep broadcast values near zero: roughly half the lanes update
/// each sweep, so the stream neither saturates nor goes dead.
fn alphas(it: usize) -> [f32; 4] {
    let base = (it % 7) as f32 * 1e-3 - 3e-3;
    [base, base - 1e-3, base + 1e-3, base - 2e-3]
}

/// Time `iters` sweeps of the 4-way fused kernel over rows of `len`
/// elements; returns (GFLOPS, flops). 8 FLOPs per element per sweep.
fn stream_axpy4(len: usize, iters: usize) -> (f64, u64) {
    let x0 = filled(1, len);
    let x1 = filled(2, len);
    let x2 = filled(3, len);
    let x3 = filled(4, len);
    let mut y = filled(5, len);
    mp_axpy4(alphas(0), [&x0, &x1, &x2, &x3], &mut y); // warm-up
    let t = Instant::now();
    for it in 0..iters {
        mp_axpy4(alphas(it), [&x0, &x1, &x2, &x3], &mut y);
    }
    let seconds = t.elapsed().as_secs_f64();
    std::hint::black_box(&y);
    let flops = 8 * len as u64 * iters as u64;
    (gflops(flops, seconds), flops)
}

/// Time `iters` sweeps of a single-row kernel (`kernel(a, x, y)`);
/// returns GFLOPS at 2 FLOPs per element per sweep.
fn stream_single(len: usize, iters: usize, kernel: impl Fn(f32, &[f32], &mut [f32])) -> f64 {
    let x = filled(1, len);
    let mut y = filled(5, len);
    kernel(alphas(0)[0], &x, &mut y); // warm-up
    let t = Instant::now();
    for it in 0..iters {
        kernel(alphas(it)[0], &x, &mut y);
    }
    let seconds = t.elapsed().as_secs_f64();
    std::hint::black_box(&y);
    gflops(2 * len as u64 * iters as u64, seconds)
}

fn main() {
    let opts = Opts::parse(&[16, 24, 32], &[]);
    let mut rep = Reporter::new("bench_simd_kernel", &opts);
    banner(
        "SIMD kernel",
        "explicitly vectorized register-tiled max-plus (lane-array mp_axpy4)",
        "conclusion: 'an additional level of tiling at the register level is required' — implemented here",
    );

    // --- runtime bit-identity: every R0 order, one checksum ---
    let orders = [
        ("naive", R0Order::Naive),
        ("permuted", R0Order::Permuted),
        ("cache-tiled", R0Order::Tiled(Tile::small())),
        ("reg-tiled", R0Order::RegTiled),
        ("simd-reg", R0Order::SimdReg),
    ];
    let reference = dmp_solve(8, 9, orders[0].1, Layout::Packed);
    for &(name, order) in &orders[1..] {
        let got = dmp_solve(8, 9, order, Layout::Packed);
        assert_eq!(
            got.to_bits(),
            reference.to_bits(),
            "R0 order {name} diverges from naive on the dmp checksum"
        );
    }
    println!(
        "\nbit-identity: all {} R0 orders agree on the dmp checksum",
        orders.len()
    );

    // --- runtime bit-identity: all six program versions vs the oracle,
    //     with the SIMD path forced on and forced off ---
    let (s1, s2) = workload(opts.seed, 9, 10);
    let oracle = spec_score(&s1, &s2, &model());
    let p = BpMaxProblem::new(s1, s2, model());
    for &alg in Algorithm::ALL {
        for simd_on in [true, false] {
            let solution = p
                .solve_opts(&SolveOptions::new().algorithm(alg).simd(simd_on))
                .expect("solve failed");
            assert_eq!(
                solution.score().to_bits(),
                oracle.to_bits(),
                "{} (simd={simd_on}) diverges from the memoized oracle",
                alg.label()
            );
        }
    }
    println!(
        "bit-identity: all {} algorithms x simd on/off match the memoized oracle",
        Algorithm::ALL.len()
    );

    // --- headline: L1-resident stream rate of the fused kernel ---
    let budget: u64 = if opts.full {
        1 << 31
    } else if opts.smoke {
        1 << 24
    } else {
        1 << 29
    };
    println!("\n--- measured stream kernels, 1 thread, L1-resident rows ---");
    let mut t = Table::new(&[
        "row len",
        "scalar axpy",
        "simd axpy",
        "simd axpy4",
        "axpy4/scalar",
    ]);
    for &len in &[512usize, 1024, 2048] {
        let iters1 = ((budget / (2 * len as u64)).max(1)) as usize;
        let iters4 = ((budget / (8 * len as u64)).max(1)) as usize;
        let g_scalar = stream_single(len, iters1, mp_axpy_scalar);
        let g_lanes = stream_single(len, iters1, mp_axpy_lanes);
        let (g_axpy4, _) = stream_axpy4(len, iters4);
        rep.measured_gflops(format!("measured/scalar-axpy/len={len}"), g_scalar);
        rep.measured_gflops(format!("measured/simd-axpy/len={len}"), g_lanes);
        rep.measured_gflops(format!("measured/simd-axpy4/len={len}"), g_axpy4);
        rep.annotate(&[("speedup_vs_scalar", g_axpy4 / g_scalar)]);
        t.row(vec![
            len.to_string(),
            f2(g_scalar),
            f2(g_lanes),
            f2(g_axpy4),
            f2(g_axpy4 / g_scalar),
        ]);
    }
    t.print();

    // --- solve-level: the kernel inside the triangular dmp instance ---
    println!("\n--- measured dmp solve, 1 thread (GFLOPS) ---");
    let mut t = Table::new(&[
        "M=N",
        "cache-tiled",
        "reg-tiled",
        "simd-reg",
        "simd/cache-tiled",
    ]);
    for &n in &opts.sizes {
        let flops = dmp_flops(n, n);
        let reps = opts.reps(if n <= 24 { 3 } else { 1 });
        let s_tiled = time_stats(reps, || {
            dmp_solve(n, n, R0Order::Tiled(Tile::small()), Layout::Packed)
        });
        let s_reg = time_stats(reps, || dmp_solve(n, n, R0Order::RegTiled, Layout::Packed));
        let s_simd = time_stats(reps, || dmp_solve(n, n, R0Order::SimdReg, Layout::Packed));
        rep.measured(
            format!("measured/dmp-tiled/m={n},n={n}"),
            s_tiled,
            Some(flops),
        );
        rep.measured(format!("measured/dmp-reg/m={n},n={n}"), s_reg, Some(flops));
        rep.measured(
            format!("measured/dmp-simd/m={n},n={n}"),
            s_simd,
            Some(flops),
        );
        rep.annotate(&[("speedup_vs_cache_tiled", s_tiled.median_s / s_simd.median_s)]);
        t.row(vec![
            n.to_string(),
            f2(gflops(flops, s_tiled.median_s)),
            f2(gflops(flops, s_reg.median_s)),
            f2(gflops(flops, s_simd.median_s)),
            f2(s_tiled.median_s / s_simd.median_s),
        ]);
    }
    t.print();
    println!(
        "\n(checksum + oracle bit-identity asserted above; the property suite pins the kernels)"
    );
    rep.finish();
}
