//! A minimal JSON tree, writer and parser.
//!
//! The workspace builds offline with no vendored registry, so there is no
//! `serde`/`serde_json`; this module hand-rolls the small JSON subset the
//! telemetry layer needs (see [`crate::report`]): objects with ordered
//! keys, arrays, strings, finite numbers, booleans and `null`.
//!
//! The writer emits pretty-printed, round-trippable output. Numbers use
//! Rust's shortest round-trip `f64` formatting (never scientific
//! notation, always a valid JSON number); non-finite values degrade to
//! `null`. The parser is a recursive-descent reader for standard JSON —
//! slightly more lenient than the writer (it accepts scientific notation
//! and `\uXXXX` escapes, including surrogate pairs) so hand-edited
//! baseline files stay loadable.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so written files diff
/// cleanly under version control.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from ordered pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Number constructor (non-finite values become `Null`).
    pub fn num(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else {
            Json::Null
        }
    }

    /// Member lookup on objects; `None` on other variants or missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number value rounded to `u64`, if a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display for f64 is shortest-round-trip and never scientific,
    // so the output is both a valid JSON number and exact on re-parse.
    let _ = write!(out, "{x}");
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: require \uXXXX low half
                                if !self.eat_keyword("\\u") {
                                    return Err(format!(
                                        "lone high surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!(
                                        "invalid low surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    format!("bad \\u escape at byte {}", self.pos)
                                })?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode from the underlying UTF-8 text.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(chunk, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap(); // lint: allow(unwrap): digit bytes scanned above are ASCII
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        parse(&v.render()).expect("round-trip parse")
    }

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-12.5),
            Json::Num(1.0e-7),
            Json::Num(117.03125),
            Json::Num(1e15),
            Json::Str(String::new()),
            Json::str("plain"),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj(vec![
            (
                "a",
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Bool(true)]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "inner",
                Json::obj(vec![("x", Json::Num(0.25)), ("y", Json::str("z"))]),
            ),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn roundtrip_string_escapes() {
        let nasty =
            "quote\" backslash\\ newline\n tab\t cr\r bell\u{0007} unicode\u{00e9}\u{1F600}";
        let v = Json::str(nasty);
        let text = v.render();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\\\"));
        assert!(text.contains("\\n"));
        assert!(text.contains("\\u0007"));
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn numbers_never_scientific_and_exact() {
        let mut out = String::new();
        write_num(&mut out, 1.0e-7);
        assert!(!out.contains('e') && !out.contains('E'), "{out}");
        assert_eq!(out.parse::<f64>().unwrap(), 1.0e-7);
        // whole numbers print without a trailing ".0"
        let mut out = String::new();
        write_num(&mut out, 3.0);
        assert_eq!(out, "3");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        let mut out = String::new();
        write_num(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn parser_accepts_scientific_and_unicode_escapes() {
        let v = parse(r#"{"x": 1.5e-3, "s": "grün 😀"}"#).unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5e-3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("gr\u{00fc}n \u{1F600}"));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "tru",
            "1.2.3",
            "{} trailing",
            r#""\ud800 lone""#,
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse(r#"{"n": 2, "s": "x", "b": false, "a": [1, 2]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
        assert!(v.get("n").unwrap().as_str().is_none());
    }
}
