//! Structured benchmark telemetry: machine-readable reports next to the
//! human tables.
//!
//! Every figure/table binary builds a [`Report`] through a [`Reporter`]
//! and writes it as `results/json/<artifact>.json` (schema below). The
//! `bench_compare` binary diffs two report directories with noise-aware
//! thresholds, and `bench_aggregate` folds a directory into the repo-root
//! `BENCH_SUMMARY.json` — see README.md "Benchmark telemetry".
//!
//! Schema (version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "artifact": "fig13_dmp_perf",
//!   "meta": {
//!     "git_sha": "…", "rustc": "rustc 1.95.0 …", "host_cores": 1,
//!     "seed": 760337, "threads": [6], "full": false, "smoke": false,
//!     "unix_time_s": 1754500000
//!   },
//!   "measurements": [
//!     { "id": "measured/tiled 64x16xN/m=24,n=24", "kind": "measured",
//!       "reps": 3, "median_s": 0.00012, "mad_s": 0.000003,
//!       "gflops": 4.51, "metrics": { "m": 24, "n": 24 } }
//!   ]
//! }
//! ```
//!
//! `median_s`/`mad_s`/`gflops` are optional per record; `kind` says how a
//! number was produced so the regression gate only applies wall-clock
//! thresholds where wall-clock exists.

use crate::json::{self, Json};
use crate::{Opts, TimeStats};
use std::path::{Path, PathBuf};

/// Version stamp written into every report.
pub const SCHEMA_VERSION: u64 = 1;

/// How a measurement was produced. Only [`Kind::Measured`] entries carry
/// wall-clock statistics the regression gate thresholds against; the
/// other kinds are deterministic outputs (models, cache simulation,
/// static program properties) that are compared for drift only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Wall-clock measured on this host.
    Measured,
    /// Predicted by the calibrated cost model (`perfmodel`/`simsched`).
    Modeled,
    /// Produced by a deterministic simulator (cache, OMP scheduler).
    Simulated,
    /// A static property of the program (LOC, legality, instance counts).
    Static,
}

impl Kind {
    /// The JSON string for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Measured => "measured",
            Kind::Modeled => "modeled",
            Kind::Simulated => "simulated",
            Kind::Static => "static",
        }
    }

    /// Inverse of [`Kind::as_str`].
    pub fn parse(s: &str) -> Result<Kind, String> {
        match s {
            "measured" => Ok(Kind::Measured),
            "modeled" => Ok(Kind::Modeled),
            "simulated" => Ok(Kind::Simulated),
            "static" => Ok(Kind::Static),
            other => Err(format!("unknown measurement kind '{other}'")),
        }
    }
}

/// One record of a report: a named quantity with optional wall-clock
/// statistics, optional GFLOPS, and free-form scalar metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    /// Stable identifier, unique within the artifact (e.g.
    /// `measured/permuted/m=24,n=24`). The compare gate matches records
    /// across runs by this id.
    pub id: String,
    /// How the numbers were produced.
    pub kind: Kind,
    /// Timed repetitions behind `median_s`/`mad_s` (0 when untimed).
    pub reps: u64,
    /// Median wall time in seconds over `reps` runs.
    pub median_s: Option<f64>,
    /// Median absolute deviation of the wall times, in seconds.
    pub mad_s: Option<f64>,
    /// Throughput in GFLOPS (measured or modeled).
    pub gflops: Option<f64>,
    /// Additional named scalars (problem sizes, speedups, miss ratios…).
    pub metrics: Vec<(String, f64)>,
}

impl Measurement {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id", Json::str(&self.id)),
            ("kind", Json::str(self.kind.as_str())),
            ("reps", Json::num(self.reps as f64)),
        ];
        if let Some(x) = self.median_s {
            pairs.push(("median_s", Json::num(x)));
        }
        if let Some(x) = self.mad_s {
            pairs.push(("mad_s", Json::num(x)));
        }
        if let Some(x) = self.gflops {
            pairs.push(("gflops", Json::num(x)));
        }
        if !self.metrics.is_empty() {
            pairs.push((
                "metrics",
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::num(*v)))
                        .collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }

    fn from_json(v: &Json) -> Result<Measurement, String> {
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or("measurement missing 'id'")?
            .to_string();
        let kind = Kind::parse(
            v.get("kind")
                .and_then(Json::as_str)
                .ok_or("measurement missing 'kind'")?,
        )?;
        let mut metrics = Vec::new();
        if let Some(Json::Obj(pairs)) = v.get("metrics") {
            for (k, val) in pairs {
                metrics.push((
                    k.clone(),
                    val.as_f64()
                        .ok_or_else(|| format!("metric '{k}' not a number"))?,
                ));
            }
        }
        Ok(Measurement {
            id,
            kind,
            reps: v.get("reps").and_then(Json::as_u64).unwrap_or(0),
            median_s: v.get("median_s").and_then(Json::as_f64),
            mad_s: v.get("mad_s").and_then(Json::as_f64),
            gflops: v.get("gflops").and_then(Json::as_f64),
            metrics,
        })
    }
}

/// Run metadata stamped into every report, for provenance and for the
/// compare gate's cross-host warning.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMeta {
    /// `git rev-parse --short=12 HEAD`, or `"unknown"` outside a repo.
    pub git_sha: String,
    /// `rustc --version` of the toolchain on the PATH.
    pub rustc: String,
    /// Host logical core count.
    pub host_cores: u64,
    /// Workload RNG seed (`--seed`).
    pub seed: u64,
    /// Thread counts of interest (`--threads`; used by the models).
    pub threads: Vec<u64>,
    /// `--full` configuration.
    pub full: bool,
    /// `--smoke` configuration (the fast CI gate).
    pub smoke: bool,
    /// Seconds since the Unix epoch at report creation.
    pub unix_time_s: u64,
}

impl RunMeta {
    /// Capture metadata for the current process and parsed options.
    pub fn capture(opts: &Opts) -> RunMeta {
        RunMeta {
            git_sha: command_line("git", &["rev-parse", "--short=12", "HEAD"]),
            rustc: command_line("rustc", &["--version"]),
            host_cores: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1) as u64,
            seed: opts.seed,
            threads: opts.threads.iter().map(|&t| t as u64).collect(),
            full: opts.full,
            smoke: opts.smoke,
            unix_time_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("git_sha", Json::str(&self.git_sha)),
            ("rustc", Json::str(&self.rustc)),
            ("host_cores", Json::num(self.host_cores as f64)),
            ("seed", Json::num(self.seed as f64)),
            (
                "threads",
                Json::Arr(self.threads.iter().map(|&t| Json::num(t as f64)).collect()),
            ),
            ("full", Json::Bool(self.full)),
            ("smoke", Json::Bool(self.smoke)),
            ("unix_time_s", Json::num(self.unix_time_s as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<RunMeta, String> {
        let threads = match v.get("threads") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|t| t.as_u64().ok_or("non-numeric thread count"))
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        Ok(RunMeta {
            git_sha: v
                .get("git_sha")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            rustc: v
                .get("rustc")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            host_cores: v.get("host_cores").and_then(Json::as_u64).unwrap_or(0),
            seed: v.get("seed").and_then(Json::as_u64).unwrap_or(0),
            threads,
            full: v.get("full").and_then(Json::as_bool).unwrap_or(false),
            smoke: v.get("smoke").and_then(Json::as_bool).unwrap_or(false),
            unix_time_s: v.get("unix_time_s").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

fn command_line(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A complete telemetry report for one artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Artifact name — the binary name, also the JSON file stem.
    pub artifact: String,
    /// Run provenance.
    pub meta: RunMeta,
    /// All recorded measurements, in recording order.
    pub measurements: Vec<Measurement>,
}

impl Report {
    /// Serialize to the schema-versioned JSON tree.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as f64)),
            ("artifact", Json::str(&self.artifact)),
            ("meta", self.meta.to_json()),
            (
                "measurements",
                Json::Arr(self.measurements.iter().map(Measurement::to_json).collect()),
            ),
        ])
    }

    /// Deserialize from a parsed JSON tree.
    pub fn from_json(v: &Json) -> Result<Report, String> {
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let artifact = v
            .get("artifact")
            .and_then(Json::as_str)
            .ok_or("missing artifact")?
            .to_string();
        let meta = RunMeta::from_json(v.get("meta").ok_or("missing meta")?)?;
        let measurements = v
            .get("measurements")
            .and_then(Json::as_arr)
            .ok_or("missing measurements")?
            .iter()
            .map(Measurement::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Report {
            artifact,
            meta,
            measurements,
        })
    }

    /// Load a report from a JSON file.
    pub fn load(path: &Path) -> Result<Report, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let v = json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        Report::from_json(&v).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Load every `*.json` report in a directory, sorted by artifact.
    pub fn load_dir(dir: &Path) -> Result<Vec<Report>, String> {
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let mut reports = Vec::new();
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("json") {
                reports.push(Report::load(&path)?);
            }
        }
        reports.sort_by(|a, b| a.artifact.cmp(&b.artifact));
        Ok(reports)
    }

    /// Find a measurement by exact id.
    pub fn find(&self, id: &str) -> Option<&Measurement> {
        self.measurements.iter().find(|m| m.id == id)
    }

    /// Largest GFLOPS among measurements of `kind`, if any carry one.
    pub fn best_gflops(&self, kind: Kind) -> Option<f64> {
        self.measurements
            .iter()
            .filter(|m| m.kind == kind)
            .filter_map(|m| m.gflops)
            .fold(None, |acc, g| Some(acc.map_or(g, |a: f64| a.max(g))))
    }

    /// Largest GFLOPS among measurements of `kind` whose id starts with
    /// `prefix`.
    pub fn best_gflops_with_prefix(&self, kind: Kind, prefix: &str) -> Option<f64> {
        self.measurements
            .iter()
            .filter(|m| m.kind == kind && m.id.starts_with(prefix))
            .filter_map(|m| m.gflops)
            .fold(None, |acc, g| Some(acc.map_or(g, |a: f64| a.max(g))))
    }
}

/// Builds a [`Report`] incrementally and writes it on
/// [`Reporter::finish`]. Construct one per binary right after
/// [`Opts::parse`].
pub struct Reporter {
    report: Report,
    dir: PathBuf,
}

impl Reporter {
    /// New reporter for `artifact` (the binary name); the output
    /// directory comes from `--json-dir` (default `results/json`,
    /// relative to the working directory).
    pub fn new(artifact: &str, opts: &Opts) -> Reporter {
        Reporter {
            report: Report {
                artifact: artifact.to_string(),
                meta: RunMeta::capture(opts),
                measurements: Vec::new(),
            },
            dir: PathBuf::from(opts.json_dir.as_deref().unwrap_or("results/json")),
        }
    }

    /// Record a raw measurement.
    pub fn add(&mut self, m: Measurement) {
        debug_assert!(
            self.report.find(&m.id).is_none(),
            "duplicate measurement id {:?}",
            m.id
        );
        self.report.measurements.push(m);
    }

    /// Record a wall-clock measurement from [`TimeStats`]; `flops`, when
    /// known, also derives a GFLOPS figure from the median.
    pub fn measured(&mut self, id: impl Into<String>, stats: TimeStats, flops: Option<u64>) {
        self.add(Measurement {
            id: id.into(),
            kind: Kind::Measured,
            reps: stats.reps as u64,
            median_s: Some(stats.median_s),
            mad_s: Some(stats.mad_s),
            gflops: flops.map(|f| f as f64 / stats.median_s / 1e9),
            metrics: Vec::new(),
        });
    }

    /// Record a measured throughput where only the rate is known (e.g.
    /// the streaming micro-benchmark, which times itself internally).
    pub fn measured_gflops(&mut self, id: impl Into<String>, gflops: f64) {
        self.add(Measurement {
            id: id.into(),
            kind: Kind::Measured,
            reps: 1,
            median_s: None,
            mad_s: None,
            gflops: Some(gflops),
            metrics: Vec::new(),
        });
    }

    /// Record a model-predicted throughput.
    pub fn modeled_gflops(&mut self, id: impl Into<String>, gflops: f64) {
        self.add(Measurement {
            id: id.into(),
            kind: Kind::Modeled,
            reps: 0,
            median_s: None,
            mad_s: None,
            gflops: Some(gflops),
            metrics: Vec::new(),
        });
    }

    /// Record an untimed record of `kind` carrying named scalar metrics.
    pub fn values(&mut self, id: impl Into<String>, kind: Kind, metrics: &[(&str, f64)]) {
        self.add(Measurement {
            id: id.into(),
            kind,
            reps: 0,
            median_s: None,
            mad_s: None,
            gflops: None,
            metrics: metrics.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Attach extra named scalars to the most recently added measurement.
    pub fn annotate(&mut self, metrics: &[(&str, f64)]) {
        if let Some(last) = self.report.measurements.last_mut() {
            last.metrics
                .extend(metrics.iter().map(|&(k, v)| (k.to_string(), v)));
        }
    }

    /// Number of measurements recorded so far.
    pub fn len(&self) -> usize {
        self.report.measurements.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.report.measurements.is_empty()
    }

    /// Write `<json-dir>/<artifact>.json` and return its path. Exits the
    /// process with an error on I/O failure — a benchmark run without its
    /// telemetry artifact should never look successful.
    pub fn finish(self) -> PathBuf {
        let path = self.dir.join(format!("{}.json", self.report.artifact));
        if let Err(e) = std::fs::create_dir_all(&self.dir)
            .map_err(|e| e.to_string())
            .and_then(|()| {
                std::fs::write(&path, self.report.to_json().render()).map_err(|e| e.to_string())
            })
        {
            eprintln!("error: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("[bench] wrote {}", path.display());
        path
    }
}

/// Fold a set of reports into the `BENCH_SUMMARY.json` tree: per-artifact
/// roll-ups plus the cross-artifact performance-trajectory headline
/// (base → permuted → tiled, measured and modeled).
pub fn summarize(reports: &[Report]) -> Json {
    let mut artifacts = Vec::new();
    for r in reports {
        let count = |k: Kind| r.measurements.iter().filter(|m| m.kind == k).count() as f64;
        let mut pairs = vec![
            ("artifact", Json::str(&r.artifact)),
            ("measurements", Json::num(r.measurements.len() as f64)),
            ("measured", Json::num(count(Kind::Measured))),
            ("modeled", Json::num(count(Kind::Modeled))),
            ("simulated", Json::num(count(Kind::Simulated))),
            ("static", Json::num(count(Kind::Static))),
        ];
        if let Some(g) = r.best_gflops(Kind::Measured) {
            pairs.push(("best_measured_gflops", Json::num(g)));
        }
        if let Some(g) = r.best_gflops(Kind::Modeled) {
            pairs.push(("best_modeled_gflops", Json::num(g)));
        }
        artifacts.push(Json::obj(pairs));
    }

    let by_name = |name: &str| reports.iter().find(|r| r.artifact == name);
    let mut trajectory = Vec::new();
    let mut dmp_tiled_pin = None;
    // Serial double max-plus: loop order + tiling, measured on this host
    // (Fig 13's measured half; the paper's Phase I story).
    if let Some(fig13) = by_name("fig13_dmp_perf") {
        let naive = fig13.best_gflops_with_prefix(Kind::Measured, "measured/naive");
        let tiled = fig13.best_gflops_with_prefix(Kind::Measured, "measured/tiled");
        if let (Some(naive), Some(tiled)) = (naive, tiled) {
            trajectory.push(("dmp_measured_naive_gflops", Json::num(naive)));
            trajectory.push(("dmp_measured_tiled_gflops", Json::num(tiled)));
            trajectory.push(("dmp_measured_tiled_vs_naive", Json::num(tiled / naive)));
            dmp_tiled_pin = Some(tiled);
        }
        if let Some(g) = fig13.best_gflops_with_prefix(Kind::Modeled, "modeled/fine + tiled") {
            // paper: 117 GFLOPS for the tiled kernel at 6 threads
            trajectory.push(("dmp_modeled_tiled_gflops", Json::num(g)));
        }
    }
    // Full BPMax: original program → hybrid+tiled (Fig 15/16 story).
    if let Some(fig15) = by_name("fig15_bpmax_perf") {
        let base = fig15.best_gflops_with_prefix(Kind::Measured, "measured/base");
        let tiled = fig15.best_gflops_with_prefix(Kind::Measured, "measured/hybrid+tiled");
        if let (Some(base), Some(tiled)) = (base, tiled) {
            trajectory.push(("bpmax_measured_base_gflops", Json::num(base)));
            trajectory.push(("bpmax_measured_hybrid_tiled_gflops", Json::num(tiled)));
            trajectory.push((
                "bpmax_measured_hybrid_tiled_vs_base",
                Json::num(tiled / base),
            ));
        }
    }
    // Register-level SIMD kernel: the "future work" tiling implemented —
    // the fused lane-array stream rate and the in-solve SimdReg point,
    // pinned against the cache-tiled dmp rate above.
    if let Some(simd) = by_name("bench_simd_kernel") {
        let axpy4 = simd.best_gflops_with_prefix(Kind::Measured, "measured/simd-axpy4");
        let solve = simd.best_gflops_with_prefix(Kind::Measured, "measured/dmp-simd");
        if let Some(g) = axpy4 {
            trajectory.push(("simd_measured_axpy4_gflops", Json::num(g)));
            if let Some(tiled) = dmp_tiled_pin {
                trajectory.push(("simd_axpy4_vs_dmp_tiled", Json::num(g / tiled)));
            }
        }
        if let Some(g) = solve {
            trajectory.push(("simd_measured_dmp_gflops", Json::num(g)));
        }
    }
    if let Some(fig16) = by_name("fig16_bpmax_speedup") {
        // paper: >100x at scale — the largest modeled speedup metric
        let best = fig16
            .measurements
            .iter()
            .filter(|m| m.kind == Kind::Modeled)
            .flat_map(|m| m.metrics.iter())
            .filter(|(k, _)| k == "speedup_vs_base")
            .map(|&(_, v)| v)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            });
        if let Some(best) = best {
            trajectory.push(("bpmax_modeled_best_speedup_vs_base", Json::num(best)));
        }
    }

    let meta = reports
        .first()
        .map(|r| r.meta.to_json())
        .unwrap_or(Json::Null);
    Json::obj(vec![
        ("schema_version", Json::num(SCHEMA_VERSION as f64)),
        ("generated_by", Json::str("bench_aggregate")),
        ("meta", meta),
        ("artifacts", Json::Arr(artifacts)),
        (
            "trajectory",
            Json::Obj(
                trajectory
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RunMeta {
        RunMeta {
            git_sha: "abc123def456".to_string(),
            rustc: "rustc 1.95.0".to_string(),
            host_cores: 4,
            seed: 761361,
            threads: vec![1, 6, 12],
            full: false,
            smoke: true,
            unix_time_s: 1_754_500_000,
        }
    }

    fn sample_report() -> Report {
        Report {
            artifact: "fig13_dmp_perf".to_string(),
            meta: meta(),
            measurements: vec![
                Measurement {
                    id: "measured/naive/m=16,n=16".to_string(),
                    kind: Kind::Measured,
                    reps: 3,
                    median_s: Some(1.25e-4),
                    mad_s: Some(3.0e-6),
                    gflops: Some(1.1),
                    metrics: vec![("m".to_string(), 16.0), ("n".to_string(), 16.0)],
                },
                Measurement {
                    id: "measured/tiled 64x16xN/m=16,n=16".to_string(),
                    kind: Kind::Measured,
                    reps: 3,
                    median_s: Some(0.5e-4),
                    mad_s: Some(1.0e-6),
                    gflops: Some(2.75),
                    metrics: vec![],
                },
                Measurement {
                    id: "modeled/fine + tiled/t=6/n=1024".to_string(),
                    kind: Kind::Modeled,
                    reps: 0,
                    median_s: None,
                    mad_s: None,
                    gflops: Some(117.0),
                    metrics: vec![],
                },
            ],
        }
    }

    #[test]
    fn report_roundtrips_through_json_text() {
        let r = sample_report();
        let text = r.to_json().render();
        let back = Report::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn report_load_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bench-report-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let r = sample_report();
        std::fs::write(dir.join("fig13_dmp_perf.json"), r.to_json().render()).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let loaded = Report::load_dir(&dir).unwrap();
        assert_eq!(loaded, vec![r]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_version_is_checked() {
        let mut v = sample_report().to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs[0].1 = Json::Num(99.0);
        }
        let err = Report::from_json(&v).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn best_gflops_filters_by_kind_and_prefix() {
        let r = sample_report();
        assert_eq!(r.best_gflops(Kind::Measured), Some(2.75));
        assert_eq!(r.best_gflops(Kind::Modeled), Some(117.0));
        assert_eq!(r.best_gflops(Kind::Static), None);
        assert_eq!(
            r.best_gflops_with_prefix(Kind::Measured, "measured/naive"),
            Some(1.1)
        );
    }

    #[test]
    fn summarize_computes_trajectory() {
        let mut fig15 = sample_report();
        fig15.artifact = "fig15_bpmax_perf".to_string();
        fig15.measurements = vec![
            Measurement {
                id: "measured/base/n=14".to_string(),
                kind: Kind::Measured,
                reps: 3,
                median_s: Some(1.0e-3),
                mad_s: Some(1.0e-5),
                gflops: Some(0.5),
                metrics: vec![],
            },
            Measurement {
                id: "measured/hybrid+tiled/n=14".to_string(),
                kind: Kind::Measured,
                reps: 3,
                median_s: Some(2.0e-4),
                mad_s: Some(1.0e-5),
                gflops: Some(2.5),
                metrics: vec![],
            },
        ];
        let summary = summarize(&[sample_report(), fig15]);
        let traj = summary.get("trajectory").unwrap();
        assert_eq!(
            traj.get("dmp_measured_tiled_vs_naive").unwrap().as_f64(),
            Some(2.75 / 1.1)
        );
        assert_eq!(
            traj.get("bpmax_measured_hybrid_tiled_vs_base")
                .unwrap()
                .as_f64(),
            Some(5.0)
        );
        assert_eq!(
            traj.get("dmp_modeled_tiled_gflops").unwrap().as_f64(),
            Some(117.0)
        );
        let arts = summary.get("artifacts").unwrap().as_arr().unwrap();
        assert_eq!(arts.len(), 2);
        assert_eq!(
            arts[0].get("best_measured_gflops").unwrap().as_f64(),
            Some(2.75)
        );
    }

    #[test]
    fn summarize_pins_simd_kernel_against_dmp_tiled() {
        let mut simd = sample_report();
        simd.artifact = "bench_simd_kernel".to_string();
        simd.measurements = vec![
            Measurement {
                id: "measured/simd-axpy4/len=1024".to_string(),
                kind: Kind::Measured,
                reps: 1,
                median_s: None,
                mad_s: None,
                gflops: Some(11.0),
                metrics: vec![],
            },
            Measurement {
                id: "measured/dmp-simd/m=32,n=32".to_string(),
                kind: Kind::Measured,
                reps: 3,
                median_s: Some(1.0e-3),
                mad_s: Some(1.0e-5),
                gflops: Some(2.2),
                metrics: vec![],
            },
        ];
        let summary = summarize(&[sample_report(), simd]);
        let traj = summary.get("trajectory").unwrap();
        assert_eq!(
            traj.get("simd_measured_axpy4_gflops").unwrap().as_f64(),
            Some(11.0)
        );
        assert_eq!(
            traj.get("simd_measured_dmp_gflops").unwrap().as_f64(),
            Some(2.2)
        );
        // pinned against fig13's best tiled rate (2.75 in the sample)
        assert_eq!(
            traj.get("simd_axpy4_vs_dmp_tiled").unwrap().as_f64(),
            Some(11.0 / 2.75)
        );
    }

    #[test]
    fn summarize_empty_is_valid() {
        let summary = summarize(&[]);
        assert_eq!(summary.get("artifacts").unwrap().as_arr().unwrap().len(), 0);
        // still parseable after render
        crate::json::parse(&summary.render()).unwrap();
    }
}
