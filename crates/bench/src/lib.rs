//! Shared harness utilities for the figure/table binaries.
//!
//! Every evaluation artifact of the paper has a binary in `src/bin/`
//! (`fig01_summary` … `table06_codegen_loc`). They share: seeded workload
//! generation, wall-clock measurement with warm-up, GFLOPS accounting,
//! aligned-table printing, structured JSON telemetry ([`report`]), and a
//! tiny CLI parser (`--sizes 16,32,48`, `--threads 6`, `--full`,
//! `--seed 7`, `--reps 5`, `--smoke`, `--json-dir DIR`).
//!
//! Run everything with `./run_all_figures.sh` or individually:
//!
//! ```text
//! cargo run -p bench --release --bin fig15_bpmax_perf -- --sizes 16,24,32
//! ```
//!
//! Alongside its text table, every binary writes
//! `results/json/<name>.json` (see [`report`] for the schema); the
//! `bench_compare` binary gates CI on those reports and
//! `bench_aggregate` folds them into `BENCH_SUMMARY.json`.
#![forbid(unsafe_code)]

pub mod dmp;
pub mod json;
pub mod report;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rna::{RnaSeq, ScoringModel};
use std::time::Instant;

/// Parsed common CLI options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Opts {
    /// Sequence sizes to sweep.
    pub sizes: Vec<usize>,
    /// Thread counts of interest (for model predictions).
    pub threads: Vec<usize>,
    /// Larger, slower, closer-to-paper configuration.
    pub full: bool,
    /// Fast small-size configuration for the CI regression gate; tags
    /// the telemetry report and shrinks self-calibrating workloads.
    pub smoke: bool,
    /// RNG seed for workloads.
    pub seed: u64,
    /// Repetition-count override for timed measurements (`--reps`).
    pub reps_override: Option<usize>,
    /// Output directory for the JSON report (`--json-dir`); default
    /// `results/json`.
    pub json_dir: Option<String>,
}

const USAGE: &str = "options: --sizes a,b,c  --threads a,b  --seed N  --reps N  \
--json-dir DIR  --smoke  --full";

impl Opts {
    /// Parse from `std::env::args`, with per-binary defaults. Prints
    /// usage and exits 0 on `--help`, or exits 2 on a malformed command
    /// line.
    pub fn parse(default_sizes: &[usize], default_threads: &[usize]) -> Opts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        match Opts::try_parse(&args, default_sizes, default_threads) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Fallible parser behind [`Opts::parse`]; `args` excludes the
    /// program name.
    pub fn try_parse(
        args: &[String],
        default_sizes: &[usize],
        default_threads: &[usize],
    ) -> Result<Opts, String> {
        let mut opts = Opts {
            sizes: default_sizes.to_vec(),
            threads: default_threads.to_vec(),
            full: false,
            smoke: false,
            seed: 0xB9A11,
            reps_override: None,
            json_dir: None,
        };
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .ok_or_else(|| format!("missing value after {flag}"))
            };
            match flag.as_str() {
                "--sizes" => opts.sizes = parse_list(value()?, "--sizes")?,
                "--threads" => opts.threads = parse_list(value()?, "--threads")?,
                "--seed" => {
                    let v = value()?;
                    opts.seed = v
                        .parse()
                        .map_err(|e| format!("invalid --seed '{v}': {e}"))?;
                }
                "--reps" => {
                    let v = value()?;
                    let reps: usize = v
                        .parse()
                        .map_err(|e| format!("invalid --reps '{v}': {e}"))?;
                    if reps == 0 {
                        return Err("--reps must be at least 1".to_string());
                    }
                    opts.reps_override = Some(reps);
                }
                "--json-dir" => opts.json_dir = Some(value()?.clone()),
                "--full" => opts.full = true,
                "--smoke" => opts.smoke = true,
                other => return Err(format!("unknown option '{other}'")),
            }
        }
        Ok(opts)
    }

    /// Repetitions for a timed measurement: the `--reps` override if
    /// given, else the binary's size-dependent default.
    pub fn reps(&self, default: usize) -> usize {
        self.reps_override.unwrap_or(default).max(1)
    }
}

fn parse_list(text: &str, flag: &str) -> Result<Vec<usize>, String> {
    let items = text
        .split(',')
        .map(|s| {
            let s = s.trim();
            s.parse::<usize>()
                .map_err(|e| format!("invalid {flag} item '{s}': {e}"))
        })
        .collect::<Result<Vec<usize>, String>>()?;
    if items.is_empty() || items.contains(&0) {
        return Err(format!("{flag} items must be positive integers"));
    }
    Ok(items)
}

/// Deterministic random sequence pair of lengths `(m, n)`.
pub fn workload(seed: u64, m: usize, n: usize) -> (RnaSeq, RnaSeq) {
    let mut rng = StdRng::seed_from_u64(seed ^ ((m as u64) << 24) ^ n as u64);
    (RnaSeq::random(&mut rng, m), RnaSeq::random(&mut rng, n))
}

/// The scoring model every harness binary uses.
pub fn model() -> ScoringModel {
    ScoringModel::bpmax_default()
}

/// Wall-clock statistics of a repeated measurement: the median and the
/// median absolute deviation (MAD) — the robust noise estimate the
/// `bench_compare` regression gate thresholds against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeStats {
    /// Number of timed repetitions.
    pub reps: usize,
    /// Median wall time in seconds.
    pub median_s: f64,
    /// Median absolute deviation from the median, in seconds (0 when
    /// `reps == 1`).
    pub mad_s: f64,
}

/// Time a closure: one warm-up call, then `reps` timed calls summarized
/// as median + MAD.
pub fn time_stats<T>(reps: usize, mut f: impl FnMut() -> T) -> TimeStats {
    std::hint::black_box(f());
    let reps = reps.max(1);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let median_s = times[times.len() / 2];
    let mut devs: Vec<f64> = times.iter().map(|&t| (t - median_s).abs()).collect();
    devs.sort_by(f64::total_cmp);
    TimeStats {
        reps,
        median_s,
        mad_s: devs[devs.len() / 2],
    }
}

/// Time a closure: one warm-up call, then the median of `reps` timed
/// calls. Returns seconds. (See [`time_stats`] for the full statistics.)
pub fn time_median<T>(reps: usize, f: impl FnMut() -> T) -> f64 {
    time_stats(reps, f).median_s
}

/// GFLOPS from FLOP count and seconds.
pub fn gflops(flops: u64, seconds: f64) -> f64 {
    flops as f64 / seconds / 1e9
}

/// Column-aligned table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for k in 0..ncol {
                if k > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[k], width = widths[k]));
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Standard banner: figure id + paper reference + substitution note.
pub fn banner(id: &str, what: &str, paper_claim: &str) {
    println!("==================================================================");
    println!("{id}: {what}");
    println!("paper: {paper_claim}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let (a1, b1) = workload(7, 10, 12);
        let (a2, b2) = workload(7, 10, 12);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_eq!(a1.len(), 10);
        assert_eq!(b1.len(), 12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["n", "GFLOPS"]);
        t.row(vec!["16".into(), "1.25".into()]);
        t.row(vec!["2048".into(), "117.00".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("GFLOPS"));
        assert!(lines[3].contains("117.00"));
    }

    #[test]
    fn gflops_math() {
        assert_eq!(gflops(2_000_000_000, 2.0), 1.0);
    }

    #[test]
    fn time_median_is_positive() {
        let t = time_median(3, || {
            let mut s = 0u64;
            for i in 0..1000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(t > 0.0);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_checks_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn opts_defaults_when_no_args() {
        let o = Opts::try_parse(&[], &[16, 32], &[6]).unwrap();
        assert_eq!(o.sizes, vec![16, 32]);
        assert_eq!(o.threads, vec![6]);
        assert!(!o.full && !o.smoke);
        assert_eq!(o.seed, 0xB9A11);
        assert_eq!(o.reps_override, None);
        assert_eq!(o.json_dir, None);
    }

    #[test]
    fn opts_good_flags() {
        let o = Opts::try_parse(
            &args(&[
                "--sizes",
                "8, 12,16",
                "--threads",
                "1,6",
                "--seed",
                "42",
                "--reps",
                "5",
                "--json-dir",
                "/tmp/x",
                "--smoke",
                "--full",
            ]),
            &[99],
            &[99],
        )
        .unwrap();
        assert_eq!(o.sizes, vec![8, 12, 16]);
        assert_eq!(o.threads, vec![1, 6]);
        assert_eq!(o.seed, 42);
        assert_eq!(o.reps_override, Some(5));
        assert_eq!(o.json_dir.as_deref(), Some("/tmp/x"));
        assert!(o.smoke && o.full);
    }

    #[test]
    fn opts_bad_sizes() {
        for bad in ["abc", "8,x", "8,,12", "-3", "0", ""] {
            let err = Opts::try_parse(&args(&["--sizes", bad]), &[16], &[]).unwrap_err();
            assert!(err.contains("--sizes"), "{bad:?}: {err}");
        }
        let err = Opts::try_parse(&args(&["--sizes"]), &[16], &[]).unwrap_err();
        assert!(err.contains("missing value"), "{err}");
    }

    #[test]
    fn opts_bad_threads_and_seed_and_reps() {
        assert!(Opts::try_parse(&args(&["--threads", "1,zero"]), &[], &[])
            .unwrap_err()
            .contains("--threads"));
        assert!(
            Opts::try_parse(&args(&["--seed", "not-a-number"]), &[], &[])
                .unwrap_err()
                .contains("--seed")
        );
        assert!(Opts::try_parse(&args(&["--seed"]), &[], &[])
            .unwrap_err()
            .contains("missing value"));
        assert!(Opts::try_parse(&args(&["--reps", "0"]), &[], &[])
            .unwrap_err()
            .contains("--reps"));
    }

    #[test]
    fn opts_unknown_flag() {
        let err = Opts::try_parse(&args(&["--frobnicate"]), &[], &[]).unwrap_err();
        assert!(err.contains("unknown option"), "{err}");
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn opts_reps_helper() {
        let o = Opts::try_parse(&[], &[], &[]).unwrap();
        assert_eq!(o.reps(3), 3);
        let o = Opts::try_parse(&args(&["--reps", "7"]), &[], &[]).unwrap();
        assert_eq!(o.reps(3), 7);
    }

    #[test]
    fn time_stats_median_and_mad() {
        let mut calls = 0u32;
        let stats = time_stats(5, || {
            calls += 1;
            std::thread::sleep(std::time::Duration::from_micros(100));
        });
        assert_eq!(calls, 6, "warm-up + 5 timed");
        assert_eq!(stats.reps, 5);
        assert!(stats.median_s >= 100e-6);
        assert!(stats.mad_s >= 0.0 && stats.mad_s <= stats.median_s);
    }
}
