//! Shared harness utilities for the figure/table binaries.
//!
//! Every evaluation artifact of the paper has a binary in `src/bin/`
//! (`fig01_summary` … `table06_codegen_loc`). They share: seeded workload
//! generation, wall-clock measurement with warm-up, GFLOPS accounting,
//! aligned-table printing, and a tiny CLI parser (`--sizes 16,32,48`,
//! `--threads 6`, `--full`, `--seed 7`).
//!
//! Run everything with `./run_all_figures.sh` or individually:
//!
//! ```text
//! cargo run -p bench --release --bin fig15_bpmax_perf -- --sizes 16,24,32
//! ```

pub mod dmp;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rna::{RnaSeq, ScoringModel};
use std::time::Instant;

/// Parsed common CLI options.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Sequence sizes to sweep.
    pub sizes: Vec<usize>,
    /// Thread counts of interest (for model predictions).
    pub threads: Vec<usize>,
    /// Larger, slower, closer-to-paper configuration.
    pub full: bool,
    /// RNG seed for workloads.
    pub seed: u64,
}

impl Opts {
    /// Parse from `std::env::args`, with per-binary defaults.
    pub fn parse(default_sizes: &[usize], default_threads: &[usize]) -> Opts {
        let mut opts = Opts {
            sizes: default_sizes.to_vec(),
            threads: default_threads.to_vec(),
            full: false,
            seed: 0xB9A11,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--sizes" => {
                    i += 1;
                    opts.sizes = args[i]
                        .split(',')
                        .map(|s| s.trim().parse().expect("bad --sizes"))
                        .collect();
                }
                "--threads" => {
                    i += 1;
                    opts.threads = args[i]
                        .split(',')
                        .map(|s| s.trim().parse().expect("bad --threads"))
                        .collect();
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args[i].parse().expect("bad --seed");
                }
                "--full" => opts.full = true,
                "--help" | "-h" => {
                    eprintln!("options: --sizes a,b,c  --threads a,b  --seed N  --full");
                    std::process::exit(0);
                }
                other => panic!("unknown option {other:?}"),
            }
            i += 1;
        }
        opts
    }
}

/// Deterministic random sequence pair of lengths `(m, n)`.
pub fn workload(seed: u64, m: usize, n: usize) -> (RnaSeq, RnaSeq) {
    let mut rng = StdRng::seed_from_u64(seed ^ ((m as u64) << 24) ^ n as u64);
    (RnaSeq::random(&mut rng, m), RnaSeq::random(&mut rng, n))
}

/// The scoring model every harness binary uses.
pub fn model() -> ScoringModel {
    ScoringModel::bpmax_default()
}

/// Time a closure: one warm-up call, then the median of `reps` timed
/// calls. Returns seconds.
pub fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// GFLOPS from FLOP count and seconds.
pub fn gflops(flops: u64, seconds: f64) -> f64 {
    flops as f64 / seconds / 1e9
}

/// Column-aligned table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for k in 0..ncol {
                if k > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[k], width = widths[k]));
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Standard banner: figure id + paper reference + substitution note.
pub fn banner(id: &str, what: &str, paper_claim: &str) {
    println!("==================================================================");
    println!("{id}: {what}");
    println!("paper: {paper_claim}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let (a1, b1) = workload(7, 10, 12);
        let (a2, b2) = workload(7, 10, 12);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_eq!(a1.len(), 10);
        assert_eq!(b1.len(), 12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["n", "GFLOPS"]);
        t.row(vec!["16".into(), "1.25".into()]);
        t.row(vec!["2048".into(), "117.00".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("GFLOPS"));
        assert!(lines[3].contains("117.00"));
    }

    #[test]
    fn gflops_math() {
        assert_eq!(gflops(2_000_000_000, 2.0), 1.0);
    }

    #[test]
    fn time_median_is_positive() {
        let t = time_median(3, || {
            let mut s = 0u64;
            for i in 0..1000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(t > 0.0);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_checks_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
