//! Standalone double max-plus driver (Equation 4) for the kernel-only
//! experiments (Table I, Figs 13/14/17/18).
//!
//! Phase I of the paper isolates the dominant reduction: `F` is seeded
//! with finite values and updated by `R0` alone, wavefront over the outer
//! diagonals. This driver runs that simplified program with a selectable
//! `R0` loop order and returns a checksum (so the optimizer cannot elide
//! the work).

use bpmax::ftable::{FTable, Layout};
use bpmax::kernels::{
    r0_instance_naive, r0_instance_permuted, r0_instance_reg, r0_instance_simd, r0_instance_tiled,
    R0Order, Tile,
};
use machine::traffic;

/// Seed every cell of every triangle with a small deterministic value.
pub fn seeded_table(m: usize, n: usize, layout: Layout) -> FTable {
    let mut f = FTable::new(m, n, layout);
    let mut x = 0x2545F491u64;
    for i1 in 0..m {
        for j1 in i1..m {
            for i2 in 0..n {
                for j2 in i2..n {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    f.set(i1, j1, i2, j2, ((x >> 32) % 17) as f32 * 0.5);
                }
            }
        }
    }
    f
}

/// Run the double max-plus program over a seeded table; returns the final
/// top cell (a checksum).
pub fn dmp_solve(m: usize, n: usize, order: R0Order, layout: Layout) -> f32 {
    let mut f = seeded_table(m, n, layout);
    for d1 in 1..m {
        for i1 in 0..m - d1 {
            let j1 = i1 + d1;
            let mut acc = f.take_block(i1, j1);
            for k1 in i1..j1 {
                let a = f.block(i1, k1);
                let b = f.block(k1 + 1, j1);
                match order {
                    R0Order::Naive => r0_instance_naive(&f, a, b, &mut acc),
                    R0Order::Permuted => r0_instance_permuted(&f, a, b, &mut acc),
                    R0Order::Tiled(t) => r0_instance_tiled(&f, a, b, &mut acc, t),
                    R0Order::RegTiled => r0_instance_reg(&f, a, b, &mut acc),
                    R0Order::SimdReg => r0_instance_simd(&f, a, b, &mut acc),
                }
            }
            f.put_block(i1, j1, acc);
        }
    }
    if m == 0 || n == 0 {
        0.0
    } else {
        f.get(0, m - 1, 0, n - 1)
    }
}

/// FLOPs of the kernel-only run.
pub fn dmp_flops(m: usize, n: usize) -> u64 {
    traffic::r0_flops(m, n)
}

/// Convenience alias for the tile type.
pub type DmpTile = Tile;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_agree_on_checksum() {
        let a = dmp_solve(6, 7, R0Order::Naive, Layout::Packed);
        let b = dmp_solve(6, 7, R0Order::Permuted, Layout::Packed);
        let c = dmp_solve(6, 7, R0Order::Tiled(Tile::cubic(3)), Layout::Packed);
        let d = dmp_solve(6, 7, R0Order::Tiled(Tile::default()), Layout::Packed);
        let e = dmp_solve(6, 7, R0Order::RegTiled, Layout::Packed);
        let s = dmp_solve(6, 7, R0Order::SimdReg, Layout::Packed);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
        assert_eq!(a, e);
        assert_eq!(a, s);
    }

    #[test]
    fn layouts_agree_on_checksum() {
        let a = dmp_solve(5, 6, R0Order::Permuted, Layout::Packed);
        let b = dmp_solve(5, 6, R0Order::Permuted, Layout::Identity);
        let c = dmp_solve(5, 6, R0Order::Permuted, Layout::Shifted);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn flops_positive() {
        assert!(dmp_flops(8, 8) > 0);
    }
}
