//! Smoke tests: every figure/table binary runs to completion at tiny
//! sizes, prints its expected markers, and writes a parseable telemetry
//! report. This keeps the harness runnable as the library evolves — a
//! broken figure binary fails `cargo test`.

use bench::report::{Kind, Report};
use std::path::PathBuf;
use std::process::Command;

/// Whether the artifact is expected to carry at least one nonzero-GFLOPS
/// measurement (the four structural artifacts — dependence tables,
/// code-gen LOC, and the two ablation simulators — report counts and
/// ratios, not throughput; the serve benchmark reports round-trip
/// latency, where FLOPS are meaningless).
fn carries_gflops(artifact: &str) -> bool {
    !matches!(
        artifact,
        "tables02_05_bpmax_schedules"
            | "table06_codegen_loc"
            | "ablation_locality"
            | "ablation_sched_policy"
            | "bench_serve"
            | "bench_serve_load"
    )
}

/// Run a binary with `--json-dir` pointed at a fresh temp dir; assert it
/// exits 0 and that its JSON report parses with at least one measurement
/// (and nonzero finite GFLOPS where the artifact promises throughput).
/// Returns the captured stdout for marker assertions.
fn run(bin: &str, artifact: &str, args: &[&str]) -> String {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("bpmax-smoke-{}-{artifact}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = Command::new(bin)
        .args(args)
        .arg("--json-dir")
        .arg(&dir)
        .output()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report = Report::load(&dir.join(format!("{artifact}.json")))
        .unwrap_or_else(|e| panic!("{artifact}: telemetry report unreadable: {e}"));
    assert_eq!(report.artifact, artifact);
    assert!(
        !report.measurements.is_empty(),
        "{artifact}: report has no measurements"
    );
    for m in &report.measurements {
        assert!(!m.id.is_empty(), "{artifact}: empty measurement id");
        if let Some(g) = m.gflops {
            assert!(
                g.is_finite() && g > 0.0,
                "{artifact}: non-positive GFLOPS in {}",
                m.id
            );
        }
        if m.kind == Kind::Measured {
            if let Some(s) = m.median_s {
                assert!(s > 0.0, "{artifact}: non-positive median in {}", m.id);
            }
        }
    }
    if carries_gflops(artifact) {
        assert!(
            report.measurements.iter().any(|m| m.gflops.is_some()),
            "{artifact}: expected at least one GFLOPS-bearing measurement"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn fig01_summary_runs() {
    let out = run(
        env!("CARGO_BIN_EXE_fig01_summary"),
        "fig01_summary",
        &["--sizes", "8,10"],
    );
    assert!(out.contains("speedup"));
    assert!(out.contains("Xeon"));
}

#[test]
fn table01_runs_and_all_schedules_legal() {
    let out = run(
        env!("CARGO_BIN_EXE_table01_dmp_schedules"),
        "table01_dmp_schedules",
        &["--sizes", "8,12"],
    );
    assert!(out.contains("j2 (vec)"));
    assert!(!out.contains(" NO"));
}

#[test]
fn tables02_05_verify() {
    let out = run(
        env!("CARGO_BIN_EXE_tables02_05_bpmax_schedules"),
        "tables02_05_bpmax_schedules",
        &[],
    );
    assert!(out.contains("all schedule sets verified legal"));
    assert!(out.matches("LEGAL").count() >= 10);
}

#[test]
fn fig11_roofline_exact_values() {
    let out = run(env!("CARGO_BIN_EXE_fig11_roofline"), "fig11_roofline", &[]);
    assert!(out.contains("345.6"), "paper peak must appear");
    assert!(out.contains("DRAM"));
}

#[test]
fn fig12_microbench_runs() {
    let out = run(
        env!("CARGO_BIN_EXE_fig12_microbench"),
        "fig12_microbench",
        &["--smoke"],
    );
    assert!(out.contains("GFLOPS"));
    assert!(out.contains("modeled thread scaling"));
}

#[test]
fn fig13_fig14_run() {
    let out = run(
        env!("CARGO_BIN_EXE_fig13_dmp_perf"),
        "fig13_dmp_perf",
        &["--sizes", "8,12"],
    );
    assert!(out.contains("fine + tiled"));
    let out = run(
        env!("CARGO_BIN_EXE_fig14_dmp_speedup"),
        "fig14_dmp_speedup",
        &["--sizes", "8,12"],
    );
    assert!(out.contains("modeled speedup"));
}

#[test]
fn fig15_fig16_run() {
    let out = run(
        env!("CARGO_BIN_EXE_fig15_bpmax_perf"),
        "fig15_bpmax_perf",
        &["--sizes", "8,10"],
    );
    assert!(out.contains("hybrid+tiled"));
    let out = run(
        env!("CARGO_BIN_EXE_fig16_bpmax_speedup"),
        "fig16_bpmax_speedup",
        &["--sizes", "8,10"],
    );
    assert!(out.contains("modeled speedup vs baseline"));
}

#[test]
fn bench_batch_throughput_runs_and_reuses_arena() {
    let out = run(
        env!("CARGO_BIN_EXE_bench_batch_throughput"),
        "bench_batch_throughput",
        &["--smoke", "--sizes", "6,8,10"],
    );
    assert!(out.contains("batch warm"), "{out}");
    assert!(out.contains("0 steady-state allocations"), "{out}");
    assert!(out.contains("per-problem latency"), "{out}");
    assert!(out.contains("outcomes: ok"), "{out}");
}

#[test]
fn supervised_batch_report_carries_outcome_counts() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("bpmax-smoke-{}-supervised", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_bench_batch_throughput"))
        .args(["--smoke", "--sizes", "6,8"])
        .arg("--json-dir")
        .arg(&dir)
        .output()
        .expect("spawning bench_batch_throughput");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = Report::load(&dir.join("bench_batch_throughput.json")).unwrap();
    let supervised = report
        .measurements
        .iter()
        .find(|m| m.id.starts_with("measured/batch-supervised/"))
        .expect("supervised wave measurement");
    let metric = |key: &str| {
        supervised
            .metrics
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("missing metric {key}: {:?}", supervised.metrics))
    };
    let problems = metric("problems");
    assert!(problems > 0.0);
    // a generous deadline/budget leaves the whole wave Ok
    assert_eq!(metric("outcomes_ok"), problems);
    for key in [
        "outcomes_degraded",
        "outcomes_failed",
        "outcomes_cancelled",
        "outcomes_timed_out",
    ] {
        assert_eq!(metric(key), 0.0, "{key}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_serve_warm_hits_beat_cold_solves() {
    let out = run(
        env!("CARGO_BIN_EXE_bench_serve"),
        "bench_serve",
        &["--smoke", "--sizes", "12,16", "--reps", "3"],
    );
    // the binary itself asserts the >=10x warm-hit speedup and the
    // zero-solve / zero-allocation warm wave; here we just pin the
    // report shape
    assert!(out.contains("warm cache hit"), "{out}");
    assert!(out.contains("x faster than cold solve"), "{out}");
    assert!(out.contains("protocol floor"), "{out}");
}

#[test]
fn bench_serve_load_concurrent_throughput_and_overload_recovery() {
    let out = run(
        env!("CARGO_BIN_EXE_bench_serve_load"),
        "bench_serve_load",
        &["--smoke", "--sizes", "10,12", "--reps", "3"],
    );
    // the binary itself asserts the core-gated throughput floor, the
    // bit-identity of every concurrent and retried answer, and (with
    // >=2 cores) that the starved overload daemon shed at least once
    assert!(out.contains("concurrent aggregate throughput"), "{out}");
    assert!(out.contains("recovered by retry"), "{out}");
    assert!(out.contains("bit-identical answers"), "{out}");
}

#[test]
fn fig17_ht_gain_is_positive_and_small() {
    let out = run(
        env!("CARGO_BIN_EXE_fig17_hyperthreading"),
        "fig17_hyperthreading",
        &[],
    );
    assert!(out.contains("gain vs 6T"));
    // the tiled scenario's 12-thread gain line exists
    assert!(out.contains("12"));
}

#[test]
fn fig18_tile_sweep_runs() {
    let out = run(
        env!("CARGO_BIN_EXE_fig18_tile_sweep"),
        "fig18_tile_sweep",
        &["--sizes", "48"],
    );
    assert!(out.contains("cubic"));
    assert!(out.contains("untiled"));
}

#[test]
fn table06_loc_ordering() {
    let out = run(
        env!("CARGO_BIN_EXE_table06_codegen_loc"),
        "table06_codegen_loc",
        &[],
    );
    assert!(out.contains("BPMax hybrid with tiled R0"));
    assert!(out.contains("#pragma omp parallel for"));
}

#[test]
fn ablations_run() {
    let out = run(
        env!("CARGO_BIN_EXE_ablation_locality"),
        "ablation_locality",
        &[],
    );
    assert!(out.contains("miss ratio"));
    let out = run(
        env!("CARGO_BIN_EXE_ablation_sched_policy"),
        "ablation_sched_policy",
        &[],
    );
    assert!(out.contains("dynamic"));
}

#[test]
fn bench_simd_kernel_runs_and_asserts_bit_identity() {
    let out = run(
        env!("CARGO_BIN_EXE_bench_simd_kernel"),
        "bench_simd_kernel",
        &["--smoke", "--sizes", "10,12", "--reps", "2"],
    );
    assert!(
        out.contains("all 5 R0 orders agree on the dmp checksum"),
        "{out}"
    );
    assert!(out.contains("match the memoized oracle"), "{out}");
    assert!(out.contains("simd axpy4"), "{out}");
    assert!(out.contains("simd-reg"), "{out}");
}

#[test]
fn future_work_binaries_run() {
    let out = run(
        env!("CARGO_BIN_EXE_future_register_tiling"),
        "future_register_tiling",
        &["--sizes", "16"],
    );
    assert!(out.contains("reg-unrolled"));
    let out = run(
        env!("CARGO_BIN_EXE_future_mpi_cluster"),
        "future_mpi_cluster",
        &[],
    );
    assert!(out.contains("speedup"));
    assert!(out.contains("comm %"));
}
