//! Integration tests for the `bench_compare` regression gate and the
//! `bench_aggregate` summary step, driving the real binaries over report
//! directories built with the `bench::report` API.

use bench::report::{Kind, Measurement, Report, RunMeta};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn meta() -> RunMeta {
    RunMeta {
        git_sha: "abc123def456".to_string(),
        rustc: "rustc 1.95.0".to_string(),
        host_cores: 1,
        seed: 761361,
        threads: vec![6],
        full: false,
        smoke: true,
        unix_time_s: 1_754_500_000,
    }
}

fn measured(id: &str, median_s: f64, mad_s: f64) -> Measurement {
    Measurement {
        id: id.to_string(),
        kind: Kind::Measured,
        reps: 5,
        median_s: Some(median_s),
        mad_s: Some(mad_s),
        gflops: Some(1.0 / median_s / 1e9),
        metrics: vec![],
    }
}

fn modeled(id: &str, gflops: f64) -> Measurement {
    Measurement {
        id: id.to_string(),
        kind: Kind::Modeled,
        reps: 0,
        median_s: None,
        mad_s: None,
        gflops: Some(gflops),
        metrics: vec![],
    }
}

fn write_reports(dir: &Path, measurements: Vec<Measurement>) {
    std::fs::create_dir_all(dir).unwrap();
    let report = Report {
        artifact: "fig13_dmp_perf".to_string(),
        meta: meta(),
        measurements,
    };
    std::fs::write(dir.join("fig13_dmp_perf.json"), report.to_json().render()).unwrap();
}

/// A fresh scratch dir unique to this test.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bpmax-gate-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn compare(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .args(args)
        .output()
        .expect("spawning bench_compare")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn identical_reports_pass_clean() {
    let dir = scratch("identical");
    let base = dir.join("base");
    let cand = dir.join("cand");
    let ms = vec![
        measured("measured/naive/m=16,n=16", 1.0e-4, 2.0e-6),
        modeled("modeled/fine + tiled/t=6/n=1024", 117.0),
    ];
    write_reports(&base, ms.clone());
    write_reports(&cand, ms);
    let out = compare(&[
        "--baseline",
        base.to_str().unwrap(),
        "--candidate",
        cand.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("no wall-clock regressions"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inflated_median_fails_the_gate() {
    let dir = scratch("inflated");
    let base = dir.join("base");
    let cand = dir.join("cand");
    write_reports(
        &base,
        vec![measured("measured/naive/m=16,n=16", 1.0e-4, 2.0e-6)],
    );
    // 3x slower: far beyond both 3x MAD and the 30% relative floor.
    write_reports(
        &cand,
        vec![measured("measured/naive/m=16,n=16", 3.0e-4, 2.0e-6)],
    );
    let out = compare(&[
        "--baseline",
        base.to_str().unwrap(),
        "--candidate",
        cand.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("REGRESSION"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slowdown_within_noise_passes() {
    let dir = scratch("noise");
    let base = dir.join("base");
    let cand = dir.join("cand");
    // 10% slower but MAD is huge: 3x MAD dominates and absorbs it.
    write_reports(
        &base,
        vec![measured("measured/naive/m=16,n=16", 1.0e-4, 2.0e-5)],
    );
    write_reports(
        &cand,
        vec![measured("measured/naive/m=16,n=16", 1.1e-4, 2.0e-5)],
    );
    let out = compare(&[
        "--baseline",
        base.to_str().unwrap(),
        "--candidate",
        cand.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn modeled_change_is_drift_not_regression() {
    let dir = scratch("drift");
    let base = dir.join("base");
    let cand = dir.join("cand");
    write_reports(
        &base,
        vec![modeled("modeled/fine + tiled/t=6/n=1024", 117.0)],
    );
    write_reports(
        &cand,
        vec![modeled("modeled/fine + tiled/t=6/n=1024", 90.0)],
    );
    let out = compare(&[
        "--baseline",
        base.to_str().unwrap(),
        "--candidate",
        cand.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("drift"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn update_baseline_pins_candidate() {
    let dir = scratch("update");
    let base = dir.join("base");
    let cand = dir.join("cand");
    write_reports(
        &cand,
        vec![measured("measured/naive/m=16,n=16", 1.0e-4, 2.0e-6)],
    );
    let out = compare(&[
        "--baseline",
        base.to_str().unwrap(),
        "--candidate",
        cand.to_str().unwrap(),
        "--update-baseline",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let pinned = Report::load(&base.join("fig13_dmp_perf.json")).unwrap();
    assert_eq!(pinned.artifact, "fig13_dmp_perf");
    assert_eq!(pinned.measurements.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn bad_arguments_exit_2() {
    let out = compare(&["--baseline", "somewhere"]); // missing --candidate
    assert_eq!(out.status.code(), Some(2));
    let out = compare(&["--nonsense"]);
    assert_eq!(out.status.code(), Some(2));
    let out = compare(&[
        "--baseline",
        "/nonexistent-base",
        "--candidate",
        "/nonexistent-cand",
    ]);
    assert_eq!(out.status.code(), Some(2)); // I/O error, not a regression
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
}

#[test]
fn usage_errors_annotate_on_github_actions() {
    // With GITHUB_ACTIONS set, exit-2 failures emit a workflow `::error`
    // annotation; without it, the output stays clean for local runs.
    let on_ci = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .args(["--baseline", "somewhere"]) // missing --candidate
        .env("GITHUB_ACTIONS", "true")
        .output()
        .expect("spawning bench_compare");
    assert_eq!(on_ci.status.code(), Some(2));
    assert!(
        stdout(&on_ci).contains("::error title=bench_compare usage error::"),
        "{}",
        stdout(&on_ci)
    );
    let local = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .args(["--baseline", "somewhere"])
        .env_remove("GITHUB_ACTIONS")
        .output()
        .expect("spawning bench_compare");
    assert_eq!(local.status.code(), Some(2));
    assert!(!stdout(&local).contains("::error"), "{}", stdout(&local));

    // I/O errors annotate too (the newline-escape path).
    let io = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .args([
            "--baseline",
            "/nonexistent-base",
            "--candidate",
            "/nonexistent-cand",
        ])
        .env("GITHUB_ACTIONS", "true")
        .output()
        .expect("spawning bench_compare");
    assert_eq!(io.status.code(), Some(2));
    assert!(stdout(&io).contains("::error"), "{}", stdout(&io));
}

#[test]
fn corrupt_baseline_json_exits_2_with_usage() {
    let dir = scratch("corrupt");
    let base = dir.join("base");
    let cand = dir.join("cand");
    write_reports(
        &cand,
        vec![measured("measured/naive/m=16,n=16", 1.0e-4, 2.0e-6)],
    );
    std::fs::create_dir_all(&base).unwrap();
    std::fs::write(base.join("fig13_dmp_perf.json"), "{ not json").unwrap();
    let out = compare(&[
        "--baseline",
        base.to_str().unwrap(),
        "--candidate",
        cand.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("error:"), "{}", stderr(&out));
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aggregate_missing_and_corrupt_inputs_exit_2_with_usage() {
    let aggregate = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_bench_aggregate"))
            .args(args)
            .output()
            .expect("spawning bench_aggregate")
    };
    // missing directory
    let out = aggregate(&["--dir", "/nonexistent-json-dir"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
    // corrupt report JSON
    let dir = scratch("aggregate-corrupt");
    let json = dir.join("json");
    std::fs::create_dir_all(&json).unwrap();
    std::fs::write(json.join("broken.json"), "]]]").unwrap();
    let out = aggregate(&[
        "--dir",
        json.to_str().unwrap(),
        "--out",
        dir.join("out.json").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
    // empty directory: nothing to aggregate is misuse too
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = aggregate(&["--dir", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aggregate_writes_summary_with_trajectory() {
    let dir = scratch("aggregate");
    let json = dir.join("json");
    write_reports(
        &json,
        vec![
            measured("measured/naive/m=16,n=16", 1.0e-4, 2.0e-6),
            measured("measured/tiled 64x16xN/m=16,n=16", 0.5e-4, 1.0e-6),
            modeled("modeled/fine + tiled/t=6/n=1024", 117.0),
        ],
    );
    let summary_path = dir.join("BENCH_SUMMARY.json");
    let out = Command::new(env!("CARGO_BIN_EXE_bench_aggregate"))
        .args([
            "--dir",
            json.to_str().unwrap(),
            "--out",
            summary_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawning bench_aggregate");
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let summary = bench::json::parse(&std::fs::read_to_string(&summary_path).unwrap()).unwrap();
    let traj = summary.get("trajectory").unwrap();
    assert_eq!(
        traj.get("dmp_measured_tiled_vs_naive").unwrap().as_f64(),
        Some(2.0)
    );
    assert_eq!(
        traj.get("dmp_modeled_tiled_gflops").unwrap().as_f64(),
        Some(117.0)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
