//! Criterion bench: the tropical GEMM loop orders (the Fig 8 "matrix
//! instance" in isolation, on rectangular operands).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tropical::gemm::{
    gemm_flops, maxplus_gemm_naive, maxplus_gemm_permuted, maxplus_gemm_tiled, TileShape,
};
use tropical::matrix::Matrix;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxplus_gemm");
    group.sample_size(10);
    for n in [64usize, 192] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 64) as f32);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 3) % 64) as f32);
        group.throughput(Throughput::Elements(gemm_flops(n, n, n)));
        group.bench_with_input(BenchmarkId::new("naive_ijk", n), &n, |bch, _| {
            bch.iter(|| {
                let mut cm = Matrix::neg_inf(n, n);
                maxplus_gemm_naive(&a, &b, &mut cm);
                cm
            });
        });
        group.bench_with_input(BenchmarkId::new("permuted_ikj", n), &n, |bch, _| {
            bch.iter(|| {
                let mut cm = Matrix::neg_inf(n, n);
                maxplus_gemm_permuted(&a, &b, &mut cm);
                cm
            });
        });
        group.bench_with_input(BenchmarkId::new("tiled_64x16xN", n), &n, |bch, _| {
            bch.iter(|| {
                let mut cm = Matrix::neg_inf(n, n);
                maxplus_gemm_tiled(&a, &b, &mut cm, TileShape::j_untiled(64, 16));
                cm
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
