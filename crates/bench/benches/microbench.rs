//! Criterion bench: the Fig 12 streaming kernel `Y = max(a + X, Y)` at
//! L1/L2/L3-resident working sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tropical::scalar::mp_axpy;
use tropical::stream::StreamBench;

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxplus_stream");
    group.sample_size(20);
    for chunk_bytes in [8usize << 10, 128 << 10, 2 << 20] {
        let elems = chunk_bytes / 4;
        group.throughput(Throughput::Elements(elems as u64));
        let mut bench = StreamBench::new(elems);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}KiB", chunk_bytes >> 10)),
            &elems,
            |b, _| {
                b.iter(|| bench.run(1));
            },
        );
    }
    group.finish();
}

fn bench_axpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("mp_axpy");
    group.sample_size(20);
    for n in [64usize, 1024, 16384] {
        let x = vec![1.0f32; n];
        let mut y = vec![0.5f32; n];
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mp_axpy(std::hint::black_box(0.25), &x, &mut y));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream, bench_axpy);
criterion_main!(benches);
