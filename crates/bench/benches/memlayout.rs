//! Criterion bench: the Fig 10 memory-map ablation — the same permuted
//! double max-plus under the three inner-triangle layouts.

use bench::dmp::dmp_solve;
use bpmax::ftable::Layout;
use bpmax::kernels::R0Order;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use machine::traffic;

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_map");
    group.sample_size(10);
    let n = 20usize;
    group.throughput(Throughput::Elements(traffic::r0_flops(n, n)));
    for (label, layout) in [
        ("option1_identity", Layout::Identity),
        ("option2_shifted", Layout::Shifted),
        ("packed", Layout::Packed),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &layout, |b, &l| {
            b.iter(|| dmp_solve(n, n, R0Order::Permuted, l));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
