//! Criterion bench: the Nussinov substrate (the `S` tables `BPMax`
//! consumes), across strand lengths and table layouts.

use bench::{model, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rna::nussinov::Nussinov;
use tropical::triangular::Layout;

fn bench_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("nussinov_fold");
    group.sample_size(20);
    let m = model();
    for n in [32usize, 128, 512] {
        let (seq, _) = workload(0x57, n, 1);
        // Θ(n³) cells of work
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| Nussinov::fold(&seq, &m));
        });
    }
    group.finish();
}

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("nussinov_layout");
    group.sample_size(20);
    let m = model();
    let (seq, _) = workload(0x58, 256, 1);
    for (label, layout) in [
        ("packed", Layout::Packed),
        ("identity", Layout::Identity),
        ("shifted", Layout::Shifted),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &layout, |b, &l| {
            b.iter(|| Nussinov::fold_with_layout(&seq, &m, l));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fold, bench_layouts);
criterion_main!(benches);
