//! Criterion bench: the double max-plus kernel in its three loop orders
//! (the Fig 13 comparison) and the Fig 18 tile shapes, at bench-friendly
//! sizes.

use bench::dmp::dmp_solve;
use bpmax::ftable::Layout;
use bpmax::kernels::{R0Order, Tile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use machine::traffic;

fn bench_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmp_order");
    group.sample_size(10);
    let n = 24usize;
    group.throughput(Throughput::Elements(traffic::r0_flops(n, n)));
    for (label, order) in [
        ("naive_k2_inner", R0Order::Naive),
        ("permuted_j2_inner", R0Order::Permuted),
        ("tiled_32x4xN", R0Order::Tiled(Tile::small())),
        ("reg_unrolled_x4", R0Order::RegTiled),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, &n| {
            b.iter(|| dmp_solve(n, n, order, Layout::Packed));
        });
    }
    group.finish();
}

fn bench_tiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmp_tile_shape_16xN");
    group.sample_size(10);
    let (m, n) = (8usize, 64usize);
    group.throughput(Throughput::Elements(traffic::r0_flops(m, n)));
    for (label, tile) in [
        ("cubic_8", Tile::cubic(8)),
        ("cubic_16", Tile::cubic(16)),
        ("32x4xN", Tile::small()),
        ("64x16xN", Tile::default()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &tile, |b, &tile| {
            b.iter(|| dmp_solve(m, n, R0Order::Tiled(tile), Layout::Packed));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orders, bench_tiles);
criterion_main!(benches);
