//! Criterion bench: the six `BPMax` program versions (Fig 15's measured
//! side) at a bench-friendly size.

use bench::{model, workload};
use bpmax::kernels::Tile;
use bpmax::{Algorithm, BpMaxProblem, SolveOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("bpmax_variant");
    group.sample_size(10);
    let n = 14usize;
    let (s1, s2) = workload(0xF15, n, n);
    let p = BpMaxProblem::new(s1, s2, model());
    group.throughput(Throughput::Elements(p.flops()));
    for alg in [
        Algorithm::Baseline,
        Algorithm::Permuted,
        Algorithm::Hybrid,
        Algorithm::HybridTiled {
            tile: Tile::small(),
        },
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(alg.label()), &alg, |b, &alg| {
            b.iter(|| p.solve_opts(&SolveOptions::new().algorithm(alg)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
