//! Multi-level set-associative LRU cache simulator.
//!
//! Replaces the paper's hardware performance counters: feed it the memory
//! trace of a kernel execution (from `polyhedral::executor::Trace`) and it
//! reports per-level hits, misses, and bytes moved. The locality claims of
//! the evaluation — tiling keeps the double max-plus in L1/L2, coarse-grain
//! scheduling thrashes to DRAM, memory-map option 1 beats option 2 — become
//! measurable as simulated miss counts.
//!
//! Model: physically-indexed, write-allocate, write-back, true-LRU per set,
//! non-inclusive (each level filters the misses of the previous one — the
//! standard teaching model, adequate for comparing schedules).

use crate::spec::{CacheLevel, MachineSpec};

/// Per-level simulation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that reached this level.
    pub accesses: u64,
    /// Hits at this level.
    pub hits: u64,
    /// Misses (passed to the next level).
    pub misses: u64,
    /// Dirty lines written back from this level.
    pub writebacks: u64,
}

impl LevelStats {
    /// Miss ratio (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

struct Set {
    /// Tags in LRU order: front = most recent.
    tags: Vec<(u64, bool)>, // (tag, dirty)
    assoc: usize,
}

impl Set {
    fn new(assoc: usize) -> Self {
        Set {
            tags: Vec::with_capacity(assoc),
            assoc,
        }
    }

    /// Access `tag`; returns (hit, `writeback_occurred`).
    fn access(&mut self, tag: u64, write: bool) -> (bool, bool) {
        if let Some(pos) = self.tags.iter().position(|&(t, _)| t == tag) {
            let (t, d) = self.tags.remove(pos);
            self.tags.insert(0, (t, d || write));
            return (true, false);
        }
        let mut wb = false;
        if self.tags.len() == self.assoc {
            let (_, dirty) = self.tags.pop().unwrap(); // lint: allow(unwrap): len == assoc >= 1 here
            wb = dirty;
        }
        self.tags.insert(0, (tag, write));
        (false, wb)
    }
}

struct Level {
    line_bytes: u64,
    sets: Vec<Set>,
    stats: LevelStats,
}

impl Level {
    fn new(spec: &CacheLevel) -> Self {
        let nsets = spec.sets().max(1);
        Level {
            line_bytes: spec.line_bytes as u64,
            sets: (0..nsets).map(|_| Set::new(spec.assoc)).collect(),
            stats: LevelStats::default(),
        }
    }

    /// Access a byte address; returns true on hit.
    fn access(&mut self, addr: u64, write: bool) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        self.stats.accesses += 1;
        let (hit, wb) = self.sets[set].access(tag, write);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        if wb {
            self.stats.writebacks += 1;
        }
        hit
    }
}

/// A cache-hierarchy simulator for one core's view of the machine.
pub struct CacheSim {
    levels: Vec<Level>,
    line_bytes: u64,
    dram_lines: u64,
    prefetch_degree: u64,
    prefetch_issued: u64,
}

impl CacheSim {
    /// Build from a [`MachineSpec`] (uses every level in `spec.caches`).
    pub fn new(spec: &MachineSpec) -> Self {
        assert!(!spec.caches.is_empty(), "machine has no caches");
        CacheSim {
            levels: spec.caches.iter().map(Level::new).collect(),
            line_bytes: spec.caches[0].line_bytes as u64,
            dram_lines: 0,
            prefetch_degree: 0,
            prefetch_issued: 0,
        }
    }

    /// Enable a next-line prefetcher: every demand miss in L1 also pulls
    /// the following `degree` lines into the hierarchy. Streaming access
    /// patterns (the permuted/tiled kernels) turn most of their misses
    /// into prefetch hits; strided column walks (the naive order) do not —
    /// one more mechanism behind the paper's loop-permutation win.
    pub fn with_prefetch(mut self, degree: u64) -> Self {
        self.prefetch_degree = degree;
        self
    }

    /// Number of prefetch fills issued.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetch_issued
    }

    /// Simulate a read of `bytes` bytes at byte address `addr` (touches
    /// every covered line).
    pub fn read(&mut self, addr: u64, bytes: u64) {
        self.touch(addr, bytes, false);
    }

    /// Simulate a write.
    pub fn write(&mut self, addr: u64, bytes: u64) {
        self.touch(addr, bytes, true);
    }

    fn touch(&mut self, addr: u64, bytes: u64, write: bool) {
        assert!(bytes > 0);
        let first = addr / self.line_bytes;
        let last = (addr + bytes - 1) / self.line_bytes;
        for line in first..=last {
            let missed_l1 = !self.access_line(line, write, true);
            // next-line prefetch on demand L1 misses
            if missed_l1 && self.prefetch_degree > 0 {
                for ahead in 1..=self.prefetch_degree {
                    self.prefetch_issued += 1;
                    self.fill_line(line + ahead);
                }
            }
        }
    }

    /// Demand access: walk levels, count stats; returns whether L1 hit.
    fn access_line(&mut self, line: u64, write: bool, count_dram: bool) -> bool {
        let a = line * self.line_bytes;
        let mut served = false;
        let mut l1_hit = false;
        for (idx, level) in self.levels.iter_mut().enumerate() {
            if level.access(a, write) {
                served = true;
                if idx == 0 {
                    l1_hit = true;
                }
                break;
            }
        }
        if !served && count_dram {
            self.dram_lines += 1;
        }
        l1_hit
    }

    /// Prefetch fill: install the line in every level without touching the
    /// demand-access statistics (hardware prefetches are not demand
    /// accesses), but DRAM traffic is real.
    fn fill_line(&mut self, line: u64) {
        let a = line * self.line_bytes;
        let mut served = false;
        for level in &mut self.levels {
            let saved = level.stats;
            if level.access(a, false) {
                level.stats = saved;
                served = true;
                break;
            }
            level.stats = saved;
        }
        if !served {
            self.dram_lines += 1;
        }
    }

    /// Replay a `polyhedral` element trace with the given element size.
    pub fn replay(&mut self, trace: &polyhedral_trace::Trace, elem_bytes: u64) {
        for acc in trace.accesses() {
            let addr = acc.addr as u64 * elem_bytes;
            match acc.kind {
                polyhedral_trace::AccessKind::Read => self.read(addr, elem_bytes),
                polyhedral_trace::AccessKind::Write => self.write(addr, elem_bytes),
            }
        }
    }

    /// Per-level statistics, innermost first.
    pub fn stats(&self) -> Vec<LevelStats> {
        self.levels.iter().map(|l| l.stats).collect()
    }

    /// Lines fetched from DRAM (misses of the outermost level).
    pub fn dram_lines(&self) -> u64 {
        self.dram_lines
    }

    /// Bytes moved from DRAM.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_lines * self.line_bytes
    }
}

/// Narrow re-export shim so this crate's public API names the trace types
/// it consumes without forcing downstream users to import `polyhedral`.
pub mod polyhedral_trace {
    pub use polyhedral::executor::{Access, AccessKind, Trace};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;

    fn tiny() -> CacheSim {
        CacheSim::new(&MachineSpec::tiny_test_machine())
    }

    #[test]
    fn repeated_access_hits() {
        let mut sim = tiny();
        sim.read(0, 4);
        sim.read(0, 4);
        sim.read(4, 4); // same 32-byte line
        let l1 = sim.stats()[0];
        assert_eq!(l1.accesses, 3);
        assert_eq!(l1.misses, 1);
        assert_eq!(l1.hits, 2);
        assert_eq!(sim.dram_lines(), 1);
    }

    #[test]
    fn streaming_beyond_capacity_misses() {
        let mut sim = tiny();
        // tiny L1 = 512 B = 16 lines; stream 64 distinct lines twice.
        for pass in 0..2 {
            for i in 0..64u64 {
                sim.read(i * 32, 4);
                let _ = pass;
            }
        }
        let l1 = sim.stats()[0];
        // Second pass cannot hit in L1 (working set 4× capacity, LRU).
        assert_eq!(l1.misses, 128);
        // But L2 (4096 B = 128 lines) holds all 64 lines: second pass hits.
        let l2 = sim.stats()[1];
        assert_eq!(l2.accesses, 128);
        assert_eq!(l2.hits, 64);
        assert_eq!(sim.dram_lines(), 64);
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut sim = tiny();
        for _ in 0..10 {
            for i in 0..8u64 {
                sim.read(i * 32, 4);
            }
        }
        let l1 = sim.stats()[0];
        assert_eq!(l1.misses, 8); // compulsory only
        assert_eq!(sim.dram_lines(), 8);
    }

    #[test]
    fn conflict_misses_with_low_associativity() {
        // tiny L1: 2-way, 8 sets, 32B lines. Three addresses mapping to the
        // same set (stride = sets × line = 256) thrash a 2-way set.
        let mut sim = tiny();
        for _ in 0..4 {
            sim.read(0, 4);
            sim.read(256, 4);
            sim.read(512, 4);
        }
        let l1 = sim.stats()[0];
        assert_eq!(l1.hits, 0, "LRU 2-way set with 3-address cycle never hits");
    }

    #[test]
    fn writes_mark_dirty_and_writeback() {
        let mut sim = tiny();
        // dirty a line, then evict it with 2 conflicting lines.
        sim.write(0, 4);
        sim.read(256, 4);
        sim.read(512, 4); // evicts line 0 (dirty)
        let l1 = sim.stats()[0];
        assert_eq!(l1.writebacks, 1);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut sim = tiny();
        sim.read(30, 4); // bytes 30..34 cross the 32-byte boundary
        assert_eq!(sim.stats()[0].accesses, 2);
    }

    #[test]
    fn miss_ratio() {
        let s = LevelStats {
            accesses: 10,
            hits: 9,
            misses: 1,
            writebacks: 0,
        };
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
        assert_eq!(LevelStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn prefetcher_helps_streams_not_strides() {
        // Streaming read of 64 consecutive lines.
        let stream = |pf: u64| {
            let mut sim = CacheSim::new(&MachineSpec::tiny_test_machine()).with_prefetch(pf);
            for i in 0..64u64 {
                sim.read(i * 32, 4);
            }
            sim.stats()[0].misses
        };
        assert!(
            stream(2) < stream(0),
            "next-line prefetch must cut streaming misses: {} vs {}",
            stream(2),
            stream(0)
        );
        // Strided walk (every 8th line): next-line prefetch fetches junk.
        let strided = |pf: u64| {
            let mut sim = CacheSim::new(&MachineSpec::tiny_test_machine()).with_prefetch(pf);
            for i in 0..64u64 {
                sim.read(i * 8 * 32, 4);
            }
            (sim.stats()[0].misses, sim.dram_lines())
        };
        let (m0, d0) = strided(0);
        let (m2, d2) = strided(2);
        assert_eq!(m0, m2, "prefetch cannot help a large-stride walk");
        assert!(d2 > d0, "useless prefetches still burn DRAM bandwidth");
    }

    #[test]
    fn prefetch_fills_do_not_count_as_accesses() {
        let mut sim = CacheSim::new(&MachineSpec::tiny_test_machine()).with_prefetch(4);
        sim.read(0, 4);
        let l1 = sim.stats()[0];
        assert_eq!(l1.accesses, 1);
        assert_eq!(sim.prefetches_issued(), 4);
        // the prefetched neighbour now hits
        sim.read(32, 4);
        assert_eq!(sim.stats()[0].hits, 1);
    }

    #[test]
    fn replay_trace() {
        use polyhedral::executor::Trace;
        let mut t = Trace::new();
        t.read(0);
        t.read(1); // same line at 4-byte elements (line 32 B)
        t.write(100);
        let mut sim = tiny();
        sim.replay(&t, 4);
        let l1 = sim.stats()[0];
        assert_eq!(l1.accesses, 3);
        assert_eq!(l1.misses, 2);
    }
}
