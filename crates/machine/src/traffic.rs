//! Analytic working-set and data-traffic estimates for `BPMax`.
//!
//! §V.C of the paper explains the performance ceiling of the full program
//! by data-movement arithmetic: computing one *row* of an inner triangle of
//! the F-table for reductions `R1`/`R2` touches "most of the elements of
//! one inner triangle of F-table and the S⁽²⁾-table", i.e. a working set of
//! Θ(N²) ≈ 16 MB for N = 2048 — larger than the 15 MB L3, so hybrid
//! parallelization beyond physical cores starves on DRAM. These closed
//! forms reproduce that arithmetic and the coarse-vs-fine traffic
//! comparison, and the cache-simulator tests cross-check them at small N.

use crate::spec::MachineSpec;

/// Bytes of one single-precision element.
pub const F32_BYTES: usize = 4;

/// Elements in a packed triangle of side `n`: `n(n+1)/2`.
pub fn triangle_elems(n: usize) -> usize {
    n * (n + 1) / 2
}

/// Storage of the packed 4-D F-table for sizes `m × n`, in bytes —
/// `T(m) × T(n)` single-precision cells ("one-fourth" of the `M²N²`
/// bounding box the default `AlphaZ` memory map would allocate).
pub fn ftable_bytes(m: usize, n: usize) -> usize {
    triangle_elems(m) * triangle_elems(n) * F32_BYTES
}

/// Bounding-box storage the default memory map would use, in bytes.
pub fn ftable_bbox_bytes(m: usize, n: usize) -> usize {
    m * m * n * n * F32_BYTES
}

/// Working set of computing one row of an inner triangle for `R1`/`R2`
/// (§V.C): one inner triangle of F (`T(n)` cells) plus the S⁽²⁾ triangle —
/// Θ(N²) bytes.
pub fn r1r2_row_working_set_bytes(n: usize) -> usize {
    (triangle_elems(n) + triangle_elems(n)) * F32_BYTES
}

/// Does the `R1`/`R2` row working set fit in the machine's last-level
/// cache? (The paper's N = 2048 case: 16 MB > 15 MB L3 → no.)
pub fn r1r2_row_fits_llc(spec: &MachineSpec, n: usize) -> bool {
    let llc = spec.caches.last().expect("machine has caches").size_bytes; // lint: allow(expect): every MachineSpec lists at least one cache
    r1r2_row_working_set_bytes(n) <= llc
}

/// Max-plus FLOPs of the double max-plus reduction `R0` over the full
/// table: for every `(i1 ≤ k1 < j1)` × `(i2 ≤ k2 < j2)` combination, 2
/// FLOPs. Closed form: `2 · C(m+1, 3)·... ` computed exactly by summation
/// (cheap — only `m·n` terms).
pub fn r0_flops(m: usize, n: usize) -> u64 {
    // Σ_{i1≤j1} (j1-i1) = Σ_{d1=0}^{m-1} d1·(m-d1)  (d1 = j1-i1)
    let s1: u64 = (0..m as u64).map(|d| d * (m as u64 - d)).sum();
    let s2: u64 = (0..n as u64).map(|d| d * (n as u64 - d)).sum();
    2 * s1 * s2
}

/// FLOPs of `R1` + `R2` (each: Σ over (i1,j1) pairs × Σ over (i2,j2) of
/// (j2-i2) combinations, 2 FLOPs per term).
pub fn r1r2_flops(m: usize, n: usize) -> u64 {
    let pairs1 = triangle_elems(m) as u64;
    let s2: u64 = (0..n as u64).map(|d| d * (n as u64 - d)).sum();
    2 * 2 * pairs1 * s2
}

/// FLOPs of `R3` + `R4` (symmetric to `R1`/`R2` with the strands swapped).
pub fn r3r4_flops(m: usize, n: usize) -> u64 {
    let pairs2 = triangle_elems(n) as u64;
    let s1: u64 = (0..m as u64).map(|d| d * (m as u64 - d)).sum();
    2 * 2 * pairs2 * s1
}

/// Total reduction FLOPs of `BPMax` (R0 + R1 + R2 + R3 + R4). The O(M²N²)
/// pointwise `F` work (base cases, the two pair-closing terms, `S1+S2`) is
/// excluded — the paper's GFLOPS numbers count reduction work.
pub fn bpmax_flops(m: usize, n: usize) -> u64 {
    r0_flops(m, n) + r1r2_flops(m, n) + r3r4_flops(m, n)
}

/// Fraction of `BPMax` FLOPs in the double max-plus (→ 1 as sizes grow; the
/// reason the paper optimizes R0 first).
pub fn r0_fraction(m: usize, n: usize) -> f64 {
    r0_flops(m, n) as f64 / bpmax_flops(m, n) as f64
}

/// DRAM traffic estimate (bytes) of the **coarse-grain** schedule for one
/// inner-triangle update in R0: each thread walks a different inner
/// triangle of F *and* all triangles west/south of it; the per-thread
/// streams do not share, so every F row it consumes is fetched from DRAM.
/// Traffic ≈ reads of 2·T(n) cells per (k1) step, times threads.
pub fn coarse_r0_dram_bytes_per_step(n: usize, threads: usize) -> usize {
    2 * triangle_elems(n) * F32_BYTES * threads
}

/// The same step under the **fine-grain** schedule: the threads cooperate
/// on one triangle; each F row is fetched once and reused across rows via
/// shared LLC. Traffic ≈ reads of 2·T(n) cells, once.
pub fn fine_r0_dram_bytes_per_step(n: usize) -> usize {
    2 * triangle_elems(n) * F32_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;

    #[test]
    fn paper_16mb_working_set_at_2048() {
        let ws = r1r2_row_working_set_bytes(2048);
        // 2 × T(2048) × 4 B ≈ 16.8 MB — the paper's "about 16 MB".
        assert!(ws > 15 * 1024 * 1024 && ws < 18 * 1024 * 1024, "ws {ws}");
        assert!(!r1r2_row_fits_llc(&MachineSpec::xeon_e5_1650v4(), 2048));
        assert!(r1r2_row_fits_llc(&MachineSpec::xeon_e5_1650v4(), 512));
    }

    #[test]
    fn ftable_is_quarter_of_bbox() {
        let m = 64;
        let n = 48;
        let packed = ftable_bytes(m, n);
        let bbox = ftable_bbox_bytes(m, n);
        let ratio = packed as f64 / bbox as f64;
        // T(m)T(n) / (m²n²) → 1/4 as sizes grow
        assert!((ratio - 0.25).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn r0_flops_matches_bruteforce() {
        let (m, n) = (7, 5);
        let mut count = 0u64;
        for i1 in 0..m {
            for j1 in i1..m {
                for i2 in 0..n {
                    for j2 in i2..n {
                        for _k1 in i1..j1 {
                            for _k2 in i2..j2 {
                                count += 2;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(r0_flops(m, n), count);
    }

    #[test]
    fn r1r2_flops_matches_bruteforce() {
        let (m, n) = (6, 5);
        let mut count = 0u64;
        for i1 in 0..m {
            for j1 in i1..m {
                let _ = j1;
                for i2 in 0..n {
                    for j2 in i2..n {
                        for _k2 in i2..j2 {
                            count += 2 * 2; // R1 and R2
                        }
                    }
                }
            }
        }
        assert_eq!(r1r2_flops(m, n), count);
    }

    #[test]
    fn r0_dominates_at_scale() {
        assert!(r0_fraction(16, 16) > 0.5);
        assert!(r0_fraction(128, 128) > 0.9);
        assert!(r0_fraction(128, 128) > r0_fraction(16, 16));
    }

    #[test]
    fn asymmetric_sizes() {
        // R1/R2 are Θ(M²N³): with N ≫ M they rival R0 (Θ(M³N³)/36-ish).
        let frac_square = r0_fraction(64, 64);
        let frac_skewed = r0_fraction(4, 64);
        assert!(frac_skewed < frac_square);
    }

    #[test]
    fn coarse_traffic_exceeds_fine() {
        let n = 256;
        assert_eq!(
            coarse_r0_dram_bytes_per_step(n, 6),
            6 * fine_r0_dram_bytes_per_step(n)
        );
    }

    #[test]
    fn bpmax_flops_is_sum() {
        let (m, n) = (10, 12);
        assert_eq!(
            bpmax_flops(m, n),
            r0_flops(m, n) + r1r2_flops(m, n) + r3r4_flops(m, n)
        );
    }
}
