//! Machine model: cache hierarchies, roofline analysis, cache simulation,
//! and analytic data-traffic estimates.
//!
//! The paper grounds its optimization targets in a machine model of the
//! Xeon E5-1650v4 (§V.A): per-level sustained bandwidths from Intel's
//! micro-architecture documentation, a theoretical *max-plus* peak of
//! ~346 single-precision GFLOPS, and the arithmetic intensity `1/6`
//! FLOP/byte of the streaming max-plus access pattern. Everything the
//! evaluation argues — why coarse-grain parallelization collapses (DRAM
//! bound), why tiling gets within 97% of the micro-benchmark, why `R1`/`R2`
//! hurt (Θ(N²) row working set) — is a statement about this model.
//!
//! * [`spec`] — machine descriptions with presets for both Xeons used in
//!   the paper.
//! * [`roofline`] — roofline curves and attainable-performance queries
//!   (reproduces Fig 11).
//! * [`cache`] — a multi-level set-associative LRU cache simulator that
//!   consumes memory traces from `polyhedral::executor` (replaces the
//!   paper's hardware performance counters).
//! * [`traffic`] — closed-form working-set/traffic estimates for the `BPMax`
//!   reductions (the Θ(N²)-per-row analysis of §V.C).
#![forbid(unsafe_code)]

pub mod cache;
pub mod roofline;
pub mod spec;
pub mod traffic;

pub use cache::{CacheSim, LevelStats};
pub use roofline::Roofline;
pub use spec::{CacheLevel, MachineSpec};
