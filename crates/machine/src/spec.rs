//! Machine descriptions.

/// One cache level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheLevel {
    /// Level name ("L1", "L2", "L3").
    pub name: &'static str,
    /// Capacity in bytes (per core for private levels, total for shared).
    pub size_bytes: usize,
    /// Associativity (ways).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Sustained bandwidth in bytes per cycle (per core for private
    /// levels), from vendor micro-architecture documentation.
    pub bytes_per_cycle: f64,
    /// Whether the level is shared across cores.
    pub shared: bool,
}

impl CacheLevel {
    /// Number of sets (`size / (assoc × line)`).
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }

    /// Bandwidth in GB/s at the given core frequency (per core for private
    /// levels).
    pub fn gbytes_per_sec(&self, freq_ghz: f64) -> f64 {
        self.bytes_per_cycle * freq_ghz
    }
}

/// A CPU description sufficient for roofline analysis and cache simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads (with SMT/hyper-threading).
    pub threads: usize,
    /// Sustained core frequency in GHz (all-core turbo for vector code).
    pub freq_ghz: f64,
    /// Single-precision SIMD lanes (8 for AVX2).
    pub simd_lanes_f32: usize,
    /// Max-plus operations issued per lane per cycle (2 when `vmaxps` and
    /// `vaddps` dual-issue on separate ports, as on Broadwell/Coffee Lake).
    pub ops_per_lane_cycle: usize,
    /// Cache levels, innermost first.
    pub caches: Vec<CacheLevel>,
    /// DRAM bandwidth in GB/s (socket total).
    pub dram_gbps: f64,
}

impl MachineSpec {
    /// Theoretical single-precision **max-plus** peak in GFLOPS for `t`
    /// threads (capped at physical cores — SMT does not add issue width).
    pub fn maxplus_peak_gflops(&self, threads: usize) -> f64 {
        let effective = threads.min(self.cores) as f64;
        effective * self.freq_ghz * self.simd_lanes_f32 as f64 * self.ops_per_lane_cycle as f64
    }

    /// Socket peak (all cores).
    pub fn socket_peak_gflops(&self) -> f64 {
        self.maxplus_peak_gflops(self.cores)
    }

    /// Bandwidth of cache level `idx` in GB/s, aggregated over `t` threads
    /// for private levels (each core streams from its own L1/L2).
    pub fn cache_bw_gbps(&self, idx: usize, threads: usize) -> f64 {
        let level = &self.caches[idx];
        let per = level.gbytes_per_sec(self.freq_ghz);
        if level.shared {
            per
        } else {
            per * threads.min(self.cores) as f64
        }
    }

    /// The Xeon E5-1650v4 of the paper: 6C/12T Broadwell-E, 32 KB 8-way L1
    /// and 256 KB 8-way L2 per core, 15 MB 20-way shared L3; sustained
    /// bandwidths 93 / 25 / 14 bytes/cycle; DRAM 76.8 GB/s. With the 3.6 GHz
    /// clock this yields the paper's ~346 GFLOPS max-plus peak
    /// (6 × 3.6 × 8 × 2 = 345.6).
    pub fn xeon_e5_1650v4() -> Self {
        MachineSpec {
            name: "Intel Xeon E5-1650 v4",
            cores: 6,
            threads: 12,
            freq_ghz: 3.6,
            simd_lanes_f32: 8,
            ops_per_lane_cycle: 2,
            caches: vec![
                CacheLevel {
                    name: "L1",
                    size_bytes: 32 * 1024,
                    assoc: 8,
                    line_bytes: 64,
                    bytes_per_cycle: 93.0,
                    shared: false,
                },
                CacheLevel {
                    name: "L2",
                    size_bytes: 256 * 1024,
                    assoc: 8,
                    line_bytes: 64,
                    bytes_per_cycle: 25.0,
                    shared: false,
                },
                CacheLevel {
                    name: "L3",
                    size_bytes: 15 * 1024 * 1024,
                    assoc: 20,
                    line_bytes: 64,
                    bytes_per_cycle: 14.0,
                    shared: true,
                },
            ],
            dram_gbps: 76.8,
        }
    }

    /// The Xeon E-2278G used for the scalability check (8C/16T Coffee
    /// Lake, "runs almost at the same speed as E5-1650v4").
    pub fn xeon_e_2278g() -> Self {
        MachineSpec {
            name: "Intel Xeon E-2278G",
            cores: 8,
            threads: 16,
            freq_ghz: 3.4,
            simd_lanes_f32: 8,
            ops_per_lane_cycle: 2,
            caches: vec![
                CacheLevel {
                    name: "L1",
                    size_bytes: 32 * 1024,
                    assoc: 8,
                    line_bytes: 64,
                    bytes_per_cycle: 93.0,
                    shared: false,
                },
                CacheLevel {
                    name: "L2",
                    size_bytes: 256 * 1024,
                    assoc: 4,
                    line_bytes: 64,
                    bytes_per_cycle: 25.0,
                    shared: false,
                },
                CacheLevel {
                    name: "L3",
                    size_bytes: 16 * 1024 * 1024,
                    assoc: 16,
                    line_bytes: 64,
                    bytes_per_cycle: 14.0,
                    shared: true,
                },
            ],
            dram_gbps: 41.6, // 2-channel DDR4-2666
        }
    }

    /// A deliberately small synthetic machine for fast cache-simulation
    /// tests (tiny caches make capacity effects visible at test sizes).
    pub fn tiny_test_machine() -> Self {
        MachineSpec {
            name: "tiny-test",
            cores: 2,
            threads: 4,
            freq_ghz: 1.0,
            simd_lanes_f32: 4,
            ops_per_lane_cycle: 1,
            caches: vec![
                CacheLevel {
                    name: "L1",
                    size_bytes: 512,
                    assoc: 2,
                    line_bytes: 32,
                    bytes_per_cycle: 32.0,
                    shared: false,
                },
                CacheLevel {
                    name: "L2",
                    size_bytes: 4096,
                    assoc: 4,
                    line_bytes: 32,
                    bytes_per_cycle: 8.0,
                    shared: true,
                },
            ],
            dram_gbps: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_peak_matches_paper() {
        let m = MachineSpec::xeon_e5_1650v4();
        let peak = m.socket_peak_gflops();
        // paper: "about 346 GFLOPS"
        assert!((peak - 345.6).abs() < 1e-9, "peak {peak}");
    }

    #[test]
    fn peak_caps_at_physical_cores() {
        let m = MachineSpec::xeon_e5_1650v4();
        assert_eq!(
            m.maxplus_peak_gflops(12),
            m.maxplus_peak_gflops(6),
            "hyper-threads must not add peak"
        );
        assert!(m.maxplus_peak_gflops(1) < m.maxplus_peak_gflops(2));
    }

    #[test]
    fn l1_bandwidth_scales_private() {
        let m = MachineSpec::xeon_e5_1650v4();
        let one = m.cache_bw_gbps(0, 1);
        let six = m.cache_bw_gbps(0, 6);
        assert!((six / one - 6.0).abs() < 1e-9);
        // paper: 93 B/cyc × 3.6 GHz = 334.8 GB/s per core
        assert!((one - 334.8).abs() < 1e-9);
    }

    #[test]
    fn l3_bandwidth_is_shared() {
        let m = MachineSpec::xeon_e5_1650v4();
        assert_eq!(m.cache_bw_gbps(2, 1), m.cache_bw_gbps(2, 6));
    }

    #[test]
    fn set_counts() {
        let m = MachineSpec::xeon_e5_1650v4();
        assert_eq!(m.caches[0].sets(), 64); // 32K / (8 × 64)
        assert_eq!(m.caches[2].sets(), 12288); // 15M / (20 × 64)
    }

    #[test]
    fn e2278g_has_more_cores_similar_speed() {
        let a = MachineSpec::xeon_e5_1650v4();
        let b = MachineSpec::xeon_e_2278g();
        assert!(b.cores > a.cores);
        assert!((a.freq_ghz - b.freq_ghz).abs() < 0.5);
        assert!(b.socket_peak_gflops() > a.socket_peak_gflops());
    }
}
