//! Roofline model (Fig 11).
//!
//! Attainable performance at arithmetic intensity `I` (FLOP/byte) through a
//! memory level with bandwidth `B` (GB/s) under compute peak `P` (GFLOPS):
//! `min(P, I·B)`. The paper plots one roof per memory level (L1, L2, L3,
//! DRAM) for the max-plus peak of the Xeon E5-1650v4, and marks the `BPMax`
//! streaming pattern at `I = 2 / (3×4) = 1/6`: the expected ceiling through
//! L1 is ≈ 329 GFLOPS at 6 threads — slightly below peak — while through
//! DRAM it is only ≈ 12.8 GFLOPS, which is why locality decides everything.

use crate::spec::MachineSpec;

/// The arithmetic intensity of the max-plus streaming pattern
/// `Y = max(a + X, Y)`: 2 FLOPs per three 4-byte memory operations.
pub const MAXPLUS_STREAM_AI: f64 = 2.0 / 12.0;

/// A roofline for one machine at a given thread count.
#[derive(Clone, Debug)]
pub struct Roofline {
    /// The machine.
    pub spec: MachineSpec,
    /// Thread count the roofs are drawn for.
    pub threads: usize,
}

/// One roof: a named bandwidth ceiling.
#[derive(Clone, Debug, PartialEq)]
pub struct Roof {
    /// Level name ("L1" … "DRAM").
    pub name: String,
    /// Bandwidth in GB/s (aggregated over threads for private levels).
    pub bw_gbps: f64,
}

impl Roofline {
    /// Build for a machine at `threads` threads.
    pub fn new(spec: MachineSpec, threads: usize) -> Self {
        Roofline { spec, threads }
    }

    /// Compute peak in GFLOPS (max-plus, single precision).
    pub fn peak(&self) -> f64 {
        self.spec.maxplus_peak_gflops(self.threads)
    }

    /// All roofs, innermost level first, DRAM last.
    pub fn roofs(&self) -> Vec<Roof> {
        let mut out: Vec<Roof> = self
            .spec
            .caches
            .iter()
            .enumerate()
            .map(|(i, c)| Roof {
                name: c.name.to_string(),
                bw_gbps: self.spec.cache_bw_gbps(i, self.threads),
            })
            .collect();
        out.push(Roof {
            name: "DRAM".to_string(),
            bw_gbps: self.spec.dram_gbps,
        });
        out
    }

    /// Attainable GFLOPS at intensity `ai` through the level named `level`.
    pub fn attainable(&self, level: &str, ai: f64) -> f64 {
        let roof = self
            .roofs()
            .into_iter()
            .find(|r| r.name == level)
            .unwrap_or_else(|| panic!("unknown memory level {level:?}")); // lint: allow(panic): unknown level is a caller bug, documented
        (ai * roof.bw_gbps).min(self.peak())
    }

    /// Ridge point of a level: the intensity where its bandwidth roof meets
    /// the compute peak.
    pub fn ridge(&self, level: &str) -> f64 {
        let roof = self
            .roofs()
            .into_iter()
            .find(|r| r.name == level)
            .unwrap_or_else(|| panic!("unknown memory level {level:?}")); // lint: allow(panic): unknown level is a caller bug, documented
        self.peak() / roof.bw_gbps
    }

    /// Sample a roof as `(ai, gflops)` points over log-spaced intensities —
    /// the plot series of Fig 11.
    pub fn series(&self, level: &str, ai_min: f64, ai_max: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && ai_min > 0.0 && ai_max > ai_min);
        let l0 = ai_min.ln();
        let l1 = ai_max.ln();
        (0..points)
            .map(|k| {
                let ai = (l0 + (l1 - l0) * k as f64 / (points - 1) as f64).exp();
                (ai, self.attainable(level, ai))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn six_thread_e5() -> Roofline {
        Roofline::new(MachineSpec::xeon_e5_1650v4(), 6)
    }

    #[test]
    fn l1_ceiling_matches_paper_329() {
        let r = six_thread_e5();
        // 1/6 FLOP/byte × (6 × 334.8 GB/s) = 334.8 GFLOPS, capped at peak
        // 345.6 → paper rounds the attainable value to "around 329 GFLOPS"
        // using its own bandwidth accounting; we accept the 329–335 window.
        let a = r.attainable("L1", MAXPLUS_STREAM_AI);
        assert!(a > 320.0 && a <= r.peak(), "attainable {a}");
    }

    #[test]
    fn dram_ceiling_is_low() {
        let r = six_thread_e5();
        let a = r.attainable("DRAM", MAXPLUS_STREAM_AI);
        // 76.8 GB/s × 1/6 = 12.8 GFLOPS
        assert!((a - 12.8).abs() < 1e-9);
    }

    #[test]
    fn roofs_order_and_count() {
        let r = six_thread_e5();
        let roofs = r.roofs();
        assert_eq!(
            roofs.iter().map(|x| x.name.as_str()).collect::<Vec<_>>(),
            vec!["L1", "L2", "L3", "DRAM"]
        );
        // cache bandwidths decrease outward at 6 threads; DRAM sits below
        // L2 (the paper's 14 B/cyc L3 figure is per-core sustained, so the
        // L3 roof can fall below the DRAM socket number — Fig 11 shows the
        // same inversion).
        for w in roofs[..3].windows(2) {
            assert!(w[0].bw_gbps > w[1].bw_gbps);
        }
        assert!(roofs[3].bw_gbps < roofs[1].bw_gbps);
    }

    #[test]
    fn attainable_caps_at_peak() {
        let r = six_thread_e5();
        assert_eq!(r.attainable("L1", 1e6), r.peak());
    }

    #[test]
    fn ridge_point_sanity() {
        let r = six_thread_e5();
        let ridge = r.ridge("L1");
        // below ridge: bandwidth-bound; above: compute-bound
        assert!(r.attainable("L1", ridge * 0.5) < r.peak());
        assert_eq!(r.attainable("L1", ridge * 2.0), r.peak());
    }

    #[test]
    fn series_is_monotone_nondecreasing() {
        let r = six_thread_e5();
        let s = r.series("L3", 0.01, 100.0, 40);
        assert_eq!(s.len(), 40);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn single_thread_roofline_lower() {
        let r1 = Roofline::new(MachineSpec::xeon_e5_1650v4(), 1);
        let r6 = six_thread_e5();
        assert!(r1.attainable("L1", MAXPLUS_STREAM_AI) < r6.attainable("L1", MAXPLUS_STREAM_AI));
        // shared DRAM: same roof regardless of threads
        assert_eq!(
            r1.attainable("DRAM", MAXPLUS_STREAM_AI),
            r6.attainable("DRAM", MAXPLUS_STREAM_AI)
        );
    }

    #[test]
    #[should_panic(expected = "unknown memory level")]
    fn unknown_level_panics() {
        six_thread_e5().attainable("L9", 1.0);
    }
}
