//! Property tests for the machine model: cache-simulator invariants and
//! roofline monotonicity.

use machine::cache::CacheSim;
use machine::roofline::Roofline;
use machine::spec::{CacheLevel, MachineSpec};
use machine::traffic;
use proptest::prelude::*;

fn tiny_machine(l1_bytes: usize, assoc: usize) -> MachineSpec {
    MachineSpec {
        name: "prop-test",
        cores: 1,
        threads: 1,
        freq_ghz: 1.0,
        simd_lanes_f32: 4,
        ops_per_lane_cycle: 1,
        caches: vec![CacheLevel {
            name: "L1",
            size_bytes: l1_bytes,
            assoc,
            line_bytes: 32,
            bytes_per_cycle: 32.0,
            shared: false,
        }],
        dram_gbps: 1.0,
    }
}

fn access_trace() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec(((0u64..2048), any::<bool>()), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hits_plus_misses_equals_accesses(trace in access_trace()) {
        let mut sim = CacheSim::new(&tiny_machine(512, 2));
        for &(addr, write) in &trace {
            if write {
                sim.write(addr, 4);
            } else {
                sim.read(addr, 4);
            }
        }
        let s = sim.stats()[0];
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.accesses >= trace.len() as u64); // straddles add accesses
        // DRAM lines = L1 misses in a one-level hierarchy
        prop_assert_eq!(sim.dram_lines(), s.misses);
    }

    #[test]
    fn bigger_cache_never_misses_more_fully_assoc(trace in access_trace()) {
        // LRU with full associativity is a stack algorithm: no Belady
        // anomaly, so a larger cache cannot miss more.
        let run = |bytes: usize| {
            let assoc = bytes / 32; // fully associative (one set)
            let mut sim = CacheSim::new(&tiny_machine(bytes, assoc));
            for &(addr, write) in &trace {
                if write {
                    sim.write(addr, 4);
                } else {
                    sim.read(addr, 4);
                }
            }
            sim.stats()[0].misses
        };
        prop_assert!(run(1024) <= run(256));
        prop_assert!(run(4096) <= run(1024));
    }

    #[test]
    fn repeating_a_trace_only_adds_hits_when_it_fits(
        addrs in proptest::collection::vec(0u64..8, 1..8),
    ) {
        // 8 lines × 32 B = 256 B working set fits a 512 B cache: the
        // second pass must be all hits.
        let mut sim = CacheSim::new(&tiny_machine(512, 16));
        for &a in &addrs {
            sim.read(a * 32, 4);
        }
        let first = sim.stats()[0];
        for &a in &addrs {
            sim.read(a * 32, 4);
        }
        let second = sim.stats()[0];
        prop_assert_eq!(second.misses, first.misses);
        prop_assert_eq!(second.hits, first.hits + addrs.len() as u64);
    }

    #[test]
    fn roofline_attainable_monotone_in_intensity(
        ai1 in 0.001f64..100.0,
        ai2 in 0.001f64..100.0,
        threads in 1usize..12,
    ) {
        let r = Roofline::new(MachineSpec::xeon_e5_1650v4(), threads);
        for level in ["L1", "L2", "L3", "DRAM"] {
            let (lo, hi) = if ai1 <= ai2 { (ai1, ai2) } else { (ai2, ai1) };
            prop_assert!(r.attainable(level, lo) <= r.attainable(level, hi) + 1e-9);
            prop_assert!(r.attainable(level, hi) <= r.peak() + 1e-9);
        }
    }

    #[test]
    fn flops_formulas_are_monotone(m in 1usize..20, n in 1usize..20) {
        prop_assert!(traffic::r0_flops(m + 1, n) >= traffic::r0_flops(m, n));
        prop_assert!(traffic::r0_flops(m, n + 1) >= traffic::r0_flops(m, n));
        prop_assert!(traffic::bpmax_flops(m, n) >= traffic::r0_flops(m, n));
        // symmetry of the double reduction
        prop_assert_eq!(traffic::r0_flops(m, n), traffic::r0_flops(n, m));
        // R1R2 ↔ R3R4 mirror under strand swap
        prop_assert_eq!(traffic::r1r2_flops(m, n), traffic::r3r4_flops(n, m));
    }

    #[test]
    fn packed_table_never_larger_than_bbox(m in 1usize..40, n in 1usize..40) {
        prop_assert!(traffic::ftable_bytes(m, n) <= traffic::ftable_bbox_bytes(m, n));
    }
}
