// Mutant fixture: `no-panic` must flag each of the three calls below
// (library file, not in a test region, no escape comment).

pub fn parse_len(s: &str) -> usize {
    let n: usize = s.parse().unwrap();
    if n == 0 {
        panic!("zero length");
    }
    n
}

pub fn first(xs: &[u8]) -> u8 {
    xs.first().copied().expect("non-empty")
}

#[cfg(test)]
mod tests {
    // In the test tail the same calls are fine.
    #[test]
    fn t() {
        let n: usize = "3".parse().unwrap();
        assert_eq!(n, 3);
    }
}
