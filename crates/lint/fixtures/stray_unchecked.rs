// Mutant fixture: `certified-unchecked` must flag the bare
// `get_unchecked` and accept the certificate-scoped one.

#[allow(unsafe_code)]
pub fn head(xs: &[f32]) -> f32 {
    unsafe { *xs.get_unchecked(0) }
}

/// Reads the first element without a bounds check.
///
/// certified-by: `bounds::demo_spec` (tier 1); caller asserts non-empty.
#[allow(unsafe_code)]
pub fn head_certified(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty());
    unsafe { *xs.get_unchecked(0) }
}
