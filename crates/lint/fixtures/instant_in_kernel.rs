// Mutant fixture: `instant-hot-loop` must flag the bare Instant::now
// when this file is linted under a hot-path name
// (crates/core/src/kernels.rs) and accept the escaped one.

use std::time::Instant;

pub fn timed_row() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn timed_row_escaped() -> f64 {
    // lint: allow(instant): one-shot calibration outside the wavefront loop
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
