// Mutant fixture: `atomic-ordering` must flag the bare Relaxed load and
// the SeqCst store, and accept the justified fetch_add.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::SeqCst);
    c.load(Ordering::Relaxed)
}

pub fn bump_justified(c: &AtomicUsize) -> usize {
    // ordering: monotone counter, readers only need eventual visibility
    c.fetch_add(1, Ordering::Relaxed)
}
