//! `bpmax-lint` — the repository's own lint engine.
//!
//! Four project-specific rules that `clippy` cannot express, enforced
//! over every crate in the workspace (`ci.sh` runs the binary before
//! the test suites):
//!
//! | rule | what it enforces |
//! |---|---|
//! | `no-panic` | library code never calls `.unwrap()` / `.expect(..)` / `panic!(..)` — fallible entry points return [`Result`]; escape: `// lint: allow(unwrap\|expect\|panic): reason` |
//! | `atomic-ordering` | every atomic `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` use carries a `// ordering:` justification on the same or an adjacent preceding line |
//! | `certified-unchecked` | `get_unchecked` appears only inside functions whose doc block carries a `certified-by:` pointer to a `bpmax::bounds` certificate |
//! | `instant-hot-loop` | `Instant::now` never appears in the solver hot-path files (timing belongs to the supervision `Watch` and the bench crate); escape: `// lint: allow(instant): reason` |
//!
//! There is no `syn` in the offline workspace, so the engine is a
//! hand-rolled lexer: it walks the source once and produces two
//! same-shape views — a *code view* with comment and string/char
//! contents blanked out (so `panic!` inside a string literal or a doc
//! example never matches) and a *comment view* with everything except
//! comment text blanked (so escapes and justifications are only
//! honoured where a human actually wrote a comment). Rules match on
//! the code view and look up escapes in the comment view.
//!
//! Scope conventions the repo upholds (and the lexer relies on):
//! `#[cfg(test)]` appears at most once per library file and everything
//! after it is the test module; binaries live under `src/bin/` or
//! `main.rs`; integration tests under `tests/`. The `no-panic` rule
//! applies to library regions only — tests and binaries may unwrap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the violation is in (as walked, relative to the root).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`no-panic`, `atomic-ordering`, ...).
    pub rule: &'static str,
    /// Human-readable description with the offending token.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// What kind of source a file is — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` (not `src/bin`, not `main.rs`).
    Lib,
    /// A binary: `src/bin/**` or `src/main.rs`.
    Bin,
    /// Test code: anything under `tests/` or `benches/`.
    Test,
}

/// The two same-shape views of a source file the rules match against.
pub struct Views {
    /// Source split into lines, comments and literal contents blanked.
    pub code: Vec<String>,
    /// Source split into lines, everything except comment text blanked.
    pub comment: Vec<String>,
}

/// Lexer state while scanning a file.
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Split `text` into the code view and the comment view (see module
/// docs). Both views have exactly the same line structure as the input.
pub fn views(text: &str) -> Views {
    let bytes: Vec<char> = text.chars().collect();
    let mut code = String::with_capacity(text.len());
    let mut comment = String::with_capacity(text.len());
    let mut st = State::Normal;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            // newlines pass through both views; a line comment ends here
            if matches!(st, State::LineComment) {
                st = State::Normal;
            }
            code.push('\n');
            comment.push('\n');
            i += 1;
            continue;
        }
        match st {
            State::Normal => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = State::LineComment;
                    code.push_str("  ");
                    comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = State::BlockComment(1);
                    code.push_str("  ");
                    comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    st = State::Str;
                    code.push('"');
                    comment.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !prev_is_ident(&bytes, i)
                    && raw_str_hashes(&bytes, i).is_some()
                {
                    let (hashes, consumed) = raw_str_hashes(&bytes, i).unwrap_or((0, 1));
                    st = State::RawStr(hashes);
                    for _ in 0..consumed {
                        code.push(' ');
                        comment.push(' ');
                    }
                    code.push('"');
                    i += consumed + 1;
                } else if c == '\'' && is_char_literal(&bytes, i) {
                    st = State::Char;
                    code.push('\'');
                    comment.push(' ');
                    i += 1;
                } else {
                    code.push(c);
                    comment.push(' ');
                    i += 1;
                }
            }
            State::LineComment => {
                code.push(' ');
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    code.push_str("  ");
                    comment.push_str("*/");
                    st = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    code.push_str("  ");
                    comment.push_str("/*");
                    st = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    code.push(' ');
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    comment.push(' ');
                    i += 2;
                    if bytes.get(i - 1) == Some(&'\n') {
                        code.push('\n');
                        comment.push('\n');
                    } else {
                        code.push(' ');
                        comment.push(' ');
                    }
                } else if c == '"' {
                    code.push('"');
                    comment.push(' ');
                    st = State::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    comment.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes, i, hashes) {
                    code.push('"');
                    comment.push(' ');
                    for _ in 0..hashes {
                        code.push(' ');
                        comment.push(' ');
                    }
                    st = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    comment.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    code.push(' ');
                    comment.push(' ');
                    i += 2;
                    code.push(' ');
                    comment.push(' ');
                } else if c == '\'' {
                    code.push('\'');
                    comment.push(' ');
                    st = State::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    comment.push(' ');
                    i += 1;
                }
            }
        }
    }
    Views {
        code: code.lines().map(str::to_string).collect(),
        comment: comment.lines().map(str::to_string).collect(),
    }
}

/// Is `bytes[i]` preceded by an identifier character (so `r`/`b` here
/// is the tail of a name like `var`, not a raw-string prefix)?
fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// If position `i` starts a raw(-byte) string literal, return
/// `(hash_count, chars_before_quote)`.
fn raw_str_hashes(bytes: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&'"')).then_some((hashes, j - i))
}

/// Does the `"` at `i` close a raw string with `hashes` hashes?
fn closes_raw(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Distinguish a char literal from a lifetime: `'x'` or `'\..'` is a
/// literal, `'a` followed by a non-quote is a lifetime.
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Solver hot-path files: `Instant::now` is banned here (timing belongs
/// to the supervision `Watch`, sampled once per outer diagonal, and to
/// the bench crate).
const HOT_FILES: &[&str] = &[
    "crates/core/src/kernels.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/baseline.rs",
    "crates/core/src/windowed.rs",
    "crates/core/src/ftable.rs",
];

/// The atomic orderings rule 2 watches for. `std::cmp::Ordering`'s
/// variants (`Less`/`Equal`/`Greater`) never match.
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// How far above a match (in lines) a justification or escape comment
/// may sit and still attach to it.
const ESCAPE_LOOKBACK: usize = 3;

/// Does any comment within the lookback window (same line or up to
/// [`ESCAPE_LOOKBACK`] lines above) contain `needle`?
fn comment_nearby(views: &Views, line: usize, needle: &str) -> bool {
    let lo = line.saturating_sub(ESCAPE_LOOKBACK);
    (lo..=line).any(|l| views.comment.get(l).is_some_and(|c| c.contains(needle)))
}

/// Line index (0-based) where the file's `#[cfg(test)]` tail module
/// starts, if any — everything from there on is test code.
fn test_region_start(views: &Views) -> Option<usize> {
    views
        .code
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
}

/// Is the `fn` enclosing `line` documented with a `certified-by:`
/// pointer? Walks up to the nearest `fn ` header, then through the
/// contiguous comment/attribute block above it.
fn enclosing_fn_certified(views: &Views, line: usize) -> bool {
    let mut l = line;
    loop {
        let code = &views.code[l];
        if code.contains("fn ") && !code.trim_start().starts_with("fn_") {
            // scan the contiguous doc/attr block above the header
            let mut k = l;
            while k > 0 {
                k -= 1;
                let code_above = views.code[k].trim();
                let comment_above = views.comment[k].trim();
                if comment_above.contains("certified-by:") {
                    return true;
                }
                let is_attr = code_above.starts_with("#[") || code_above.starts_with("#!");
                let is_comment_only = code_above.is_empty() && !comment_above.is_empty();
                if !is_attr && !is_comment_only {
                    return false;
                }
            }
            return false;
        }
        if l == 0 {
            return false;
        }
        l -= 1;
    }
}

/// Lint one file's source text. `file` is the path as reported in
/// findings (also used for the hot-file rule), `kind` decides which
/// rules apply.
pub fn lint_source(file: &str, text: &str, kind: FileKind) -> Vec<Finding> {
    let v = views(text);
    let mut out = Vec::new();
    let test_start = test_region_start(&v);
    let in_test = |line: usize| kind == FileKind::Test || test_start.is_some_and(|s| line >= s);
    let hot = HOT_FILES.iter().any(|h| file.ends_with(h));
    let finding = |line: usize, rule: &'static str, message: String| Finding {
        file: file.to_string(),
        line: line + 1,
        rule,
        message,
    };

    for (i, code) in v.code.iter().enumerate() {
        // Rule 1: no-panic in library code.
        if kind == FileKind::Lib && !in_test(i) {
            for (token, key) in [
                (".unwrap()", "unwrap"),
                (".expect(", "expect"),
                ("panic!(", "panic"),
            ] {
                let mut hit = code.contains(token);
                if hit && key == "expect" {
                    // `self.expect(` is a parser method of its own, and
                    // `.expect_err(` is a test idiom — not the Option/
                    // Result combinator this rule bans.
                    hit = code
                        .match_indices(".expect(")
                        .any(|(p, _)| !code[..p].ends_with("self") && !code[..p].ends_with("Self"));
                    hit = hit && !code.contains(".expect_err(");
                }
                if hit && !comment_nearby(&v, i, &format!("lint: allow({key})")) {
                    out.push(finding(
                        i,
                        "no-panic",
                        format!(
                            "`{token}` in library code — return a Result or add \
                             `// lint: allow({key}): <why this cannot fail>`"
                        ),
                    ));
                }
            }
        }

        // Rule 2: atomic orderings must be justified (everywhere,
        // including tests — a wrong ordering in a test harness still
        // races).
        for ord in ATOMIC_ORDERINGS {
            if code.contains(ord) && !comment_nearby(&v, i, "ordering:") {
                out.push(finding(
                    i,
                    "atomic-ordering",
                    format!(
                        "`{ord}` without a `// ordering:` justification on this \
                         or an adjacent preceding line"
                    ),
                ));
            }
        }

        // Rule 3: unchecked indexing only inside certificate-scoped
        // functions. The dot makes this the method call — a mention of
        // the name in an identifier or path does not count.
        if code.contains(".get_unchecked") && !enclosing_fn_certified(&v, i) {
            out.push(finding(
                i,
                "certified-unchecked",
                "`get_unchecked` outside a function documented with a \
                 `certified-by:` bounds-certificate pointer"
                    .to_string(),
            ));
        }

        // Rule 4: no ad-hoc timing in the solver hot paths.
        if hot
            && !in_test(i)
            && code.contains("Instant::now")
            && !comment_nearby(&v, i, "lint: allow(instant)")
        {
            out.push(finding(
                i,
                "instant-hot-loop",
                "`Instant::now` in a solver hot-path file — route timing \
                 through the supervision Watch or the bench crate"
                    .to_string(),
            ));
        }
    }
    out
}

/// Classify a workspace-relative path into the [`FileKind`] the rules
/// expect.
pub fn classify(path: &str) -> FileKind {
    let p = path.replace('\\', "/");
    if p.contains("/tests/") || p.contains("/benches/") {
        FileKind::Test
    } else if p.contains("/src/bin/") || p.ends_with("/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Recursively collect `.rs` files under `dir` into `out`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every crate under `<root>/crates`: `src/`, `tests/` and
/// `benches/` of each. Vendored shims and fixture files are out of
/// scope (shims reproduce external APIs; fixtures are deliberately
/// broken).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut members: Vec<_> = std::fs::read_dir(&crates)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    members.sort();
    for member in members {
        if !member.is_dir() {
            continue;
        }
        for sub in ["src", "tests", "benches"] {
            let dir = member.join(sub);
            if dir.is_dir() {
                walk(&dir, &mut files)?;
            }
        }
    }
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &text, classify(&rel)));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_masks_comments_strings_and_chars() {
        let v = views(
            "let a = \"panic!(x)\"; // panic!(y)\nlet c = '\\''; let l: &'a str = r#\"panic!(z)\"#;\n",
        );
        assert!(!v.code[0].contains("panic!"));
        assert!(v.comment[0].contains("panic!(y)"));
        assert!(!v.code[1].contains("panic!"));
        assert!(v.code[1].contains("let l"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let v = views("/* a /* b */ still comment */ let x = 1;\n");
        assert!(v.code[0].contains("let x = 1;"));
        assert!(!v.code[0].contains("still"));
        assert!(v.comment[0].contains("still comment"));
    }

    #[test]
    fn unwrap_in_string_or_comment_is_ignored() {
        let src = "fn f() { let s = \".unwrap()\"; } // .unwrap()\n";
        assert!(lint_source("crates/x/src/a.rs", src, FileKind::Lib).is_empty());
    }

    #[test]
    fn escape_comment_suppresses_no_panic() {
        let src =
            "fn f() {\n    // lint: allow(unwrap): slice length fixed above\n    x.unwrap();\n}\n";
        assert!(lint_source("crates/x/src/a.rs", src, FileKind::Lib).is_empty());
        let bare = "fn f() {\n    x.unwrap();\n}\n";
        let f = lint_source("crates/x/src/a.rs", bare, FileKind::Lib);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn self_expect_is_a_method_not_a_combinator() {
        let src = "fn f(&mut self) { self.expect(b'{'); }\n";
        assert!(lint_source("crates/x/src/a.rs", src, FileKind::Lib).is_empty());
        let src = "fn f() { opt.expect(\"boom\"); }\n";
        assert_eq!(
            lint_source("crates/x/src/a.rs", src, FileKind::Lib).len(),
            1
        );
    }

    #[test]
    fn cfg_test_tail_is_exempt_from_no_panic() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_source("crates/x/src/a.rs", src, FileKind::Lib).is_empty());
    }

    #[test]
    fn cmp_ordering_variants_do_not_match() {
        let src = "fn f() { let _ = a.cmp(&b) == Ordering::Less; }\n";
        assert!(lint_source("crates/x/src/a.rs", src, FileKind::Lib).is_empty());
    }

    #[test]
    fn atomic_ordering_needs_justification_even_in_tests() {
        let src = "fn t() { c.fetch_add(1, Ordering::Relaxed); }\n";
        let f = lint_source("crates/x/tests/a.rs", src, FileKind::Test);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "atomic-ordering");
        let ok = "fn t() {\n    // ordering: test counter, no synchronization implied\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/x/tests/a.rs", ok, FileKind::Test).is_empty());
    }

    #[test]
    fn get_unchecked_requires_certified_fn() {
        let bad = "fn f(xs: &[u8]) -> u8 {\n    unsafe { *xs.get_unchecked(0) }\n}\n";
        let f = lint_source("crates/x/src/a.rs", bad, FileKind::Lib);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "certified-unchecked");
        let good = "/// certified-by: `bounds::spec` (tier 1).\n#[allow(unsafe_code)]\nfn f(xs: &[u8]) -> u8 {\n    unsafe { *xs.get_unchecked(0) }\n}\n";
        assert!(lint_source("crates/x/src/a.rs", good, FileKind::Lib).is_empty());
    }

    #[test]
    fn instant_banned_only_in_hot_files() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let f = lint_source("crates/core/src/kernels.rs", src, FileKind::Lib);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "instant-hot-loop");
        assert!(lint_source("crates/core/src/perfmodel.rs", src, FileKind::Lib).is_empty());
        assert!(lint_source("crates/core/src/supervise.rs", src, FileKind::Lib).is_empty());
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/engine.rs"), FileKind::Lib);
        assert_eq!(classify("crates/cli/src/main.rs"), FileKind::Bin);
        assert_eq!(classify("crates/bench/src/bin/fig13.rs"), FileKind::Bin);
        assert_eq!(classify("crates/core/tests/properties.rs"), FileKind::Test);
    }
}
