//! `bpmax-lint` binary: lint the workspace, print findings, exit 1 if any.
//!
//! Usage: `bpmax-lint [workspace-root]` (default: current directory).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    match bpmax_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("bpmax-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("bpmax-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bpmax-lint: error walking {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
