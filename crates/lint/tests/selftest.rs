//! Lint self-test: every seeded mutant fixture is flagged by exactly the
//! rule it was planted for, and the real workspace passes clean.

use bpmax_lint::{classify, lint_source, lint_workspace, FileKind};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => panic!("read {}: {e}", path.display()),
    }
}

fn rules(findings: &[bpmax_lint::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn mutant_unwrap_in_lib_is_flagged() {
    let f = lint_source(
        "crates/x/src/mutant.rs",
        &fixture("unwrap_in_lib.rs"),
        FileKind::Lib,
    );
    assert_eq!(
        rules(&f),
        ["no-panic", "no-panic", "no-panic"],
        "unwrap, panic! and expect must each be flagged once: {f:?}"
    );
    // The test-tail unwrap must NOT be among them.
    assert!(f.iter().all(|x| x.line < 16), "{f:?}");
}

#[test]
fn mutant_relaxed_no_comment_is_flagged() {
    let f = lint_source(
        "crates/x/src/mutant.rs",
        &fixture("relaxed_no_comment.rs"),
        FileKind::Lib,
    );
    assert_eq!(
        rules(&f),
        ["atomic-ordering", "atomic-ordering"],
        "bare SeqCst and Relaxed must be flagged, justified Relaxed must pass: {f:?}"
    );
}

#[test]
fn mutant_stray_unchecked_is_flagged() {
    let f = lint_source(
        "crates/x/src/mutant.rs",
        &fixture("stray_unchecked.rs"),
        FileKind::Lib,
    );
    assert_eq!(
        rules(&f),
        ["certified-unchecked"],
        "bare get_unchecked flagged, certified-by one passes: {f:?}"
    );
}

#[test]
fn mutant_instant_in_kernel_is_flagged() {
    // Linted under a hot-path name the bare Instant::now is an error...
    let f = lint_source(
        "crates/core/src/kernels.rs",
        &fixture("instant_in_kernel.rs"),
        FileKind::Lib,
    );
    assert_eq!(rules(&f), ["instant-hot-loop"], "{f:?}");
    // ...and under any other name the same source is fine.
    let f = lint_source(
        "crates/core/src/perfmodel.rs",
        &fixture("instant_in_kernel.rs"),
        FileKind::Lib,
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn real_workspace_is_clean() {
    // CARGO_MANIFEST_DIR is crates/lint; the workspace root is two up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let findings = lint_workspace(&root).unwrap();
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixtures_are_outside_walker_scope() {
    // The walker covers src/, tests/ and benches/ only — the seeded
    // mutants in fixtures/ must never leak into a workspace run.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let findings = lint_workspace(&root).unwrap();
    assert!(
        findings.iter().all(|f| !f.file.contains("fixtures")),
        "{findings:?}"
    );
}

#[test]
fn classification_matches_repo_layout() {
    assert_eq!(classify("crates/core/src/engine.rs"), FileKind::Lib);
    assert_eq!(classify("crates/cli/src/main.rs"), FileKind::Bin);
    assert_eq!(classify("crates/lint/src/main.rs"), FileKind::Bin);
    assert_eq!(classify("crates/core/tests/properties.rs"), FileKind::Test);
    assert_eq!(classify("crates/bench/src/bin/fig13.rs"), FileKind::Bin);
}

#[test]
fn serve_module_is_panic_free_lib_code() {
    // The daemon's wire decoder faces untrusted bytes: it must stay
    // lib-classified (no unwrap/expect/panic without a justified escape)
    // and actually lint clean, independent of the workspace-wide sweep.
    let rel = "crates/core/src/serve.rs";
    assert_eq!(classify(rel), FileKind::Lib);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => panic!("read {}: {e}", path.display()),
    };
    let findings = lint_source(rel, &text, FileKind::Lib);
    assert!(
        findings.is_empty(),
        "serve module must stay panic-free:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn hot_file_set_exists_on_disk() {
    // If a hot file is renamed the rule silently stops applying — fail
    // loudly here instead.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    for hot in [
        "crates/core/src/kernels.rs",
        "crates/core/src/engine.rs",
        "crates/core/src/baseline.rs",
        "crates/core/src/windowed.rs",
        "crates/core/src/ftable.rs",
    ] {
        assert!(
            Path::new(&root).join(hot).is_file(),
            "hot-path file {hot} missing — update bpmax-lint's HOT_FILES"
        );
    }
}
