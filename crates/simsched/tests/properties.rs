//! Property tests for the scheduling simulator: Graham bounds on random
//! DAGs, policy conservation laws, hyper-threading monotonicity.

use proptest::prelude::*;
use simsched::distributed::{simulate_bpmax_distributed, ClusterSpec};
use simsched::sched::{simulate_dag, simulate_parallel_for, OmpPolicy};
use simsched::speedup::HtModel;
use simsched::task::TaskGraph;

/// Random layered DAG: tasks in layers, edges only forward one layer.
fn layered_dag() -> impl Strategy<Value = TaskGraph> {
    (
        proptest::collection::vec(1usize..5, 1..5), // layer widths
        any::<u64>(),
    )
        .prop_map(|(widths, seed)| {
            let mut g = TaskGraph::new();
            let mut rng = seed | 1;
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let mut prev: Vec<usize> = Vec::new();
            for (li, &w) in widths.iter().enumerate() {
                let layer: Vec<usize> = (0..w)
                    .map(|k| g.add_task((next() % 20 + 1) as f64, format!("t{li}.{k}")))
                    .collect();
                for &p in &prev {
                    for &c in &layer {
                        if next() % 3 != 0 {
                            g.add_edge(p, c);
                        }
                    }
                }
                prev = layer;
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graham_bounds_hold_for_random_dags(g in layered_dag(), p in 1usize..9) {
        let r = simulate_dag(&g, p);
        let work = g.total_work();
        let cp = g.critical_path();
        prop_assert!(r.makespan >= work / p as f64 - 1e-9);
        prop_assert!(r.makespan >= cp - 1e-9);
        prop_assert!(r.makespan <= work / p as f64 + (1.0 - 1.0 / p as f64) * cp + 1e-6);
        // busy time conservation
        let busy: f64 = r.busy.iter().sum();
        prop_assert!((busy - work).abs() < 1e-6);
    }

    #[test]
    fn more_workers_never_hurt_greedy_on_flat_loops(
        costs in proptest::collection::vec(0.1f64..10.0, 1..60),
        p in 1usize..8,
    ) {
        // (General DAG greedy scheduling is not monotone in P, but flat
        // dynamic parallel-for is.)
        let a = simulate_parallel_for(&costs, p, OmpPolicy::Dynamic { chunk: 1 });
        let b = simulate_parallel_for(&costs, p + 1, OmpPolicy::Dynamic { chunk: 1 });
        prop_assert!(b.makespan <= a.makespan + 1e-9);
    }

    #[test]
    fn all_policies_conserve_work(
        costs in proptest::collection::vec(0.1f64..10.0, 1..50),
        p in 1usize..7,
        chunk in 1usize..5,
    ) {
        let total: f64 = costs.iter().sum();
        for policy in [
            OmpPolicy::Static { chunk: None },
            OmpPolicy::Static { chunk: Some(chunk) },
            OmpPolicy::Dynamic { chunk },
            OmpPolicy::Guided { min_chunk: chunk },
        ] {
            let r = simulate_parallel_for(&costs, p, policy);
            let busy: f64 = r.busy.iter().sum();
            prop_assert!((busy - total).abs() < 1e-6, "{policy:?}");
            prop_assert!(r.makespan >= total / p as f64 - 1e-9);
            prop_assert!(r.makespan <= total + 1e-9);
        }
    }

    #[test]
    fn dynamic_within_greedy_bound_of_static(
        costs in proptest::collection::vec(0.1f64..10.0, 1..50),
        p in 1usize..7,
    ) {
        // Greedy dynamic is not universally ≤ static (proptest found a
        // counterexample: a huge task grabbed last), but it obeys the
        // greedy bound makespan ≤ OPT + max_cost ≤ static + max_cost, and
        // on the *decreasing* cost profiles of BPMax wavefronts (LPT
        // order) it wins outright.
        let max_cost = costs.iter().copied().fold(0.0f64, f64::max);
        let stat = simulate_parallel_for(&costs, p, OmpPolicy::Static { chunk: None });
        let dynm = simulate_parallel_for(&costs, p, OmpPolicy::Dynamic { chunk: 1 });
        prop_assert!(dynm.makespan <= stat.makespan + max_cost + 1e-9);

        // LPT order (the BPMax row profile is decreasing): dynamic ≤ static.
        let mut sorted = costs.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let stat_s = simulate_parallel_for(&sorted, p, OmpPolicy::Static { chunk: None });
        let dynm_s = simulate_parallel_for(&sorted, p, OmpPolicy::Dynamic { chunk: 1 });
        prop_assert!(dynm_s.makespan <= stat_s.makespan + 1e-9);
    }

    #[test]
    fn ht_speed_in_unit_interval(phys in 1usize..16, eta in 0.0f64..1.0, t in 1usize..32) {
        let m = HtModel { physical: phys, smt_efficiency: eta };
        let s = m.worker_speed(t);
        prop_assert!(s > 0.0 && s <= 1.0);
        // aggregate throughput never decreases with t
        prop_assert!(m.aggregate_throughput(t + 1) >= m.aggregate_throughput(t) - 1e-9);
    }

    #[test]
    fn distributed_speedup_within_bounds(nodes in 1usize..9, m in 2usize..12, n in 2usize..24) {
        let base = ClusterSpec::commodity(1);
        let one = simulate_bpmax_distributed(m, n, &base);
        let many = simulate_bpmax_distributed(m, n, &ClusterSpec { nodes, ..base });
        let s = one.seconds / many.seconds;
        prop_assert!(s <= nodes as f64 + 1e-9, "superlinear: {s} on {nodes}");
        prop_assert!(many.seconds > 0.0);
        if nodes == 1 {
            prop_assert_eq!(many.bytes_moved, 0);
        }
    }
}
