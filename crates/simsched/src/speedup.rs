//! Speedup curves and the hyper-threading model (Figs 12, 16, 17).
//!
//! Hyper-threading shares a core's issue ports between two hardware
//! threads: for compute-dense code the second thread adds little (the
//! paper measures 3–5% on the tiled double max-plus), while latency-bound
//! code can gain more (Varadrajan's >10%). We model a machine with `P`
//! physical cores running `t > P` workers as all workers slowing to
//! `speed(t) = (P + (t − P)·η) / t`, where `η ∈ [0, 1]` is the SMT
//! efficiency: `η = 0` means the extra threads add nothing (pure issue-
//! bound), `η = 1` means perfect scaling (never reached in practice).

use crate::sched::{simulate_dag_speed, SimResult};
use crate::task::TaskGraph;

/// Hyper-threading efficiency model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HtModel {
    /// Physical core count.
    pub physical: usize,
    /// Marginal efficiency of a hyper-thread (0 = useless, 1 = a full
    /// core). The paper's tiled kernel behaves like η ≈ 0.1–0.2.
    pub smt_efficiency: f64,
}

impl HtModel {
    /// No hyper-threading benefit at all.
    pub fn none(physical: usize) -> Self {
        HtModel {
            physical,
            smt_efficiency: 0.0,
        }
    }

    /// Per-worker speed when running `t` workers.
    pub fn worker_speed(&self, t: usize) -> f64 {
        if t <= self.physical {
            1.0
        } else {
            let p = self.physical as f64;
            let t = t as f64;
            (p + (t - p) * self.smt_efficiency) / t
        }
    }

    /// Aggregate throughput (workers × speed) — monotone non-decreasing in
    /// `t`, capped by `physical + (t − physical)·η`.
    pub fn aggregate_throughput(&self, t: usize) -> f64 {
        t as f64 * self.worker_speed(t)
    }
}

/// Simulate `graph` for each thread count; returns `(threads, makespan,
/// speedup-vs-1-thread)` triples. `ht` scales worker speed beyond physical
/// cores; pass [`HtModel::none`] with a huge `physical` to disable.
pub fn speedup_curve(graph: &TaskGraph, threads: &[usize], ht: HtModel) -> Vec<(usize, f64, f64)> {
    let base = simulate_dag_speed(graph, 1, ht.worker_speed(1)).makespan;
    threads
        .iter()
        .map(|&t| {
            let r: SimResult = simulate_dag_speed(graph, t, ht.worker_speed(t));
            let s = if r.makespan == 0.0 {
                1.0
            } else {
                base / r.makespan
            };
            (t, r.makespan, s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskGraph;

    fn flat(n: usize, cost: f64) -> TaskGraph {
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(cost, format!("t{i}"));
        }
        g
    }

    #[test]
    fn speed_is_one_within_physical() {
        let m = HtModel {
            physical: 6,
            smt_efficiency: 0.15,
        };
        assert_eq!(m.worker_speed(1), 1.0);
        assert_eq!(m.worker_speed(6), 1.0);
        assert!(m.worker_speed(7) < 1.0);
    }

    #[test]
    fn throughput_monotone_and_capped() {
        let m = HtModel {
            physical: 6,
            smt_efficiency: 0.15,
        };
        let mut prev = 0.0;
        for t in 1..=12 {
            let agg = m.aggregate_throughput(t);
            assert!(agg >= prev - 1e-12);
            prev = agg;
        }
        // 12 threads on 6 cores at η=0.15 → 6 + 6·0.15 = 6.9 "cores"
        assert!((m.aggregate_throughput(12) - 6.9).abs() < 1e-9);
    }

    #[test]
    fn ht_gain_is_small_like_fig17() {
        // 1200 equal tasks on 6 physical cores, η = 0.15:
        // 12 threads should gain a few percent over 6, not 2×.
        let g = flat(1200, 1.0);
        let m = HtModel {
            physical: 6,
            smt_efficiency: 0.15,
        };
        let curve = speedup_curve(&g, &[6, 12], m);
        let s6 = curve[0].2;
        let s12 = curve[1].2;
        let gain = s12 / s6 - 1.0;
        assert!(gain > 0.0 && gain < 0.2, "gain {gain}");
        assert!((gain - 0.15).abs() < 0.05); // ≈ η for embarrassingly parallel work
    }

    #[test]
    fn no_ht_model_plateaus() {
        let g = flat(600, 1.0);
        let m = HtModel::none(6);
        let curve = speedup_curve(&g, &[6, 8, 12], m);
        let s6 = curve[0].2;
        for &(_, _, s) in &curve[1..] {
            assert!((s - s6).abs() < 1e-9, "no gain beyond physical");
        }
    }

    #[test]
    fn perfect_smt_doubles() {
        let g = flat(1200, 1.0);
        let m = HtModel {
            physical: 6,
            smt_efficiency: 1.0,
        };
        let curve = speedup_curve(&g, &[6, 12], m);
        assert!((curve[1].2 / curve[0].2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_of_one_thread_is_one() {
        let g = flat(10, 2.0);
        let curve = speedup_curve(&g, &[1], HtModel::none(4));
        assert!((curve[0].2 - 1.0).abs() < 1e-12);
    }
}
