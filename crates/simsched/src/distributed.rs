//! Distributed-memory (MPI-style) execution model — the paper's second
//! future-work item ("we plan to ... distribute the computation over a
//! cluster using MPI").
//!
//! Model: the outer triangle cells `(i1, j1)` are owned block-cyclically
//! by `i1 mod nodes`. The wavefront proceeds one outer diagonal at a
//! time; to build triangle `(i1, j1)` a node needs the inner-triangle
//! blocks of `(i1, k1)` and `(k1+1, j1)` for every split `k1` — blocks
//! owned by other nodes must be received over the interconnect. Per
//! diagonal, compute and communication are *not* overlapped (the
//! pessimistic baseline an MPI port would start from):
//!
//! `T(d) = max_node(compute) + (remote_blocks × block_bytes) / link_bw
//!        + messages × latency`
//!
//! The model exposes the two regimes any MPI port of a wavefront DP hits:
//! small problems are latency-bound (speedup ≪ nodes), large problems
//! amortize communication against `Θ(M³N³)` compute and scale.

/// A homogeneous cluster description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Sustained per-core kernel rate in GFLOPS.
    pub core_gflops: f64,
    /// Interconnect bandwidth per node, GB/s.
    pub link_gbps: f64,
    /// Per-message latency in microseconds.
    pub latency_us: f64,
}

impl ClusterSpec {
    /// A typical small cluster: 100 Gb/s interconnect, 2 µs latency.
    pub fn commodity(nodes: usize) -> Self {
        ClusterSpec {
            nodes,
            cores_per_node: 6,
            core_gflops: 20.0,
            link_gbps: 12.5,
            latency_us: 2.0,
        }
    }
}

/// Result of one simulated distributed run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistResult {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Seconds spent communicating (non-overlapped model).
    pub comm_seconds: f64,
    /// Total bytes moved between nodes.
    pub bytes_moved: u64,
    /// Messages sent.
    pub messages: u64,
}

impl DistResult {
    /// Fraction of time in communication.
    pub fn comm_fraction(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.comm_seconds / self.seconds
        }
    }
}

/// FLOPs of one triangle's reductions at outer diagonal `d1` (R0 over all
/// splits; R3/R4 ride along and R1/R2 are charged at the same rate).
fn triangle_flops(d1: usize, n: usize) -> f64 {
    let s2: u64 = (0..n as u64).map(|d| d * (n as u64 - d)).sum();
    (2 * d1 as u64 * s2) as f64 + 4.0 * s2 as f64
}

/// Bytes of one inner-triangle block (packed single precision).
fn block_bytes(n: usize) -> u64 {
    (n as u64 * (n as u64 + 1) / 2) * 4
}

/// Simulate `BPMax` over an `m × n` problem on `cluster`.
pub fn simulate_bpmax_distributed(m: usize, n: usize, cluster: &ClusterSpec) -> DistResult {
    assert!(cluster.nodes >= 1 && cluster.cores_per_node >= 1);
    let node_rate = cluster.core_gflops * 1e9 * cluster.cores_per_node as f64;
    let owner = |i1: usize| i1 % cluster.nodes;
    let mut seconds = 0.0f64;
    let mut comm_seconds = 0.0f64;
    let mut bytes_moved = 0u64;
    let mut messages = 0u64;
    for d1 in 1..m {
        // Compute: each node works on the triangles it owns, cores within
        // a node share the row-parallel kernel (assumed fully efficient —
        // the intra-node story is Figs 13–17's).
        let mut node_work = vec![0.0f64; cluster.nodes];
        let mut node_remote_blocks = vec![0u64; cluster.nodes];
        for i1 in 0..m - d1 {
            let j1 = i1 + d1;
            let me = owner(i1);
            node_work[me] += triangle_flops(d1, n);
            // operand blocks: (i1, k1) owned by `me` (same i1); and
            // (k1+1, j1) owned by owner(k1+1) — remote when different.
            for k1 in i1..j1 {
                if owner(k1 + 1) != me {
                    node_remote_blocks[me] += 1;
                }
            }
        }
        let compute = node_work.iter().map(|w| w / node_rate).fold(0.0, f64::max);
        // Communication: received blocks per node, bandwidth-serialized at
        // the busiest receiver, plus one latency per message.
        let max_blocks = node_remote_blocks.iter().copied().max().unwrap_or(0);
        let comm = max_blocks as f64 * block_bytes(n) as f64 / (cluster.link_gbps * 1e9)
            + max_blocks as f64 * cluster.latency_us * 1e-6;
        bytes_moved += node_remote_blocks.iter().sum::<u64>() * block_bytes(n);
        messages += node_remote_blocks.iter().sum::<u64>();
        seconds += compute + comm;
        comm_seconds += comm;
    }
    DistResult {
        seconds,
        comm_seconds,
        bytes_moved,
        messages,
    }
}

/// Speedup of `nodes` nodes over one node of the same spec.
pub fn distributed_speedup(m: usize, n: usize, base: &ClusterSpec, nodes: usize) -> f64 {
    let one = simulate_bpmax_distributed(m, n, &ClusterSpec { nodes: 1, ..*base });
    let many = simulate_bpmax_distributed(m, n, &ClusterSpec { nodes, ..*base });
    one.seconds / many.seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_node_has_no_communication() {
        let r = simulate_bpmax_distributed(16, 32, &ClusterSpec::commodity(1));
        assert_eq!(r.bytes_moved, 0);
        assert_eq!(r.messages, 0);
        assert_eq!(r.comm_seconds, 0.0);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn large_problems_scale_small_ones_do_not() {
        let base = ClusterSpec::commodity(1);
        let small = distributed_speedup(8, 16, &base, 4);
        let large = distributed_speedup(64, 512, &base, 4);
        assert!(large > small, "large {large} vs small {small}");
        assert!(
            large > 2.0,
            "4 nodes should give >2x on a large problem: {large}"
        );
        assert!(
            small < 4.0,
            "small problems must not scale perfectly: {small}"
        );
    }

    #[test]
    fn speedup_bounded_by_nodes() {
        let base = ClusterSpec::commodity(1);
        for nodes in [2usize, 4, 8] {
            let s = distributed_speedup(32, 128, &base, nodes);
            assert!(s <= nodes as f64 + 1e-9, "{nodes} nodes: {s}");
            assert!(s >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn slower_links_hurt() {
        let fast = ClusterSpec {
            link_gbps: 50.0,
            ..ClusterSpec::commodity(4)
        };
        let slow = ClusterSpec {
            link_gbps: 1.0,
            ..ClusterSpec::commodity(4)
        };
        let rf = simulate_bpmax_distributed(24, 96, &fast);
        let rs = simulate_bpmax_distributed(24, 96, &slow);
        assert!(rs.seconds > rf.seconds);
        assert!(rs.comm_fraction() > rf.comm_fraction());
    }

    #[test]
    fn latency_dominates_tiny_problems() {
        let lowlat = ClusterSpec {
            latency_us: 0.1,
            ..ClusterSpec::commodity(4)
        };
        let highlat = ClusterSpec {
            latency_us: 100.0,
            ..ClusterSpec::commodity(4)
        };
        let a = simulate_bpmax_distributed(8, 8, &lowlat);
        let b = simulate_bpmax_distributed(8, 8, &highlat);
        assert!(b.seconds > a.seconds);
    }

    #[test]
    fn comm_fraction_falls_with_problem_size() {
        let c = ClusterSpec::commodity(4);
        let small = simulate_bpmax_distributed(8, 32, &c).comm_fraction();
        let large = simulate_bpmax_distributed(32, 256, &c).comm_fraction();
        assert!(large < small, "{large} < {small}");
    }
}
