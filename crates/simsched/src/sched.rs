//! List scheduling of DAGs and OMP-style parallel-for policies.
//!
//! [`simulate_dag`] is a greedy work-conserving list scheduler (the
//! behaviour of OMP `dynamic` / a work-stealing runtime, up to tie-breaks):
//! whenever a worker is free and a task is ready, it runs. Greedy
//! scheduling obeys Graham's bound `T_P ≤ work/P + (1 − 1/P)·cp`, which the
//! property tests assert.
//!
//! [`simulate_parallel_for`] models one OMP `parallel for` over tasks of
//! varying cost under the three schedule clauses. `BPMax` wavefronts are
//! triangular, so per-iteration costs shrink along the loop — exactly the
//! imbalance that makes the paper prefer `dynamic` ("The OMP
//! dynamic-schedule works better than the static and guided-schedule due
//! to an imbalanced workload").

use crate::task::{TaskGraph, TaskId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Total order on finite f64 times for the event heap.
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Result of a simulated execution.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// Wall-clock makespan.
    pub makespan: f64,
    /// Busy time per worker.
    pub busy: Vec<f64>,
}

impl SimResult {
    /// Utilization: total busy time / (makespan × workers), in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0.0 {
            return 1.0;
        }
        let total: f64 = self.busy.iter().sum();
        total / (self.makespan * self.busy.len() as f64)
    }

    /// Load imbalance: max busy / mean busy (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let mean: f64 = self.busy.iter().sum::<f64>() / self.busy.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        self.busy.iter().copied().fold(0.0, f64::max) / mean
    }
}

/// Greedy list scheduling of `graph` onto `workers` workers, each running
/// at `speed` (cost units per time unit; the hyper-threading model passes
/// `speed < 1`). Ready tasks are dispatched FIFO in task-id order —
/// deterministic and close to OMP `dynamic` on wavefront loops.
pub fn simulate_dag_speed(graph: &TaskGraph, workers: usize, speed: f64) -> SimResult {
    assert!(workers >= 1, "need at least one worker");
    assert!(speed > 0.0, "worker speed must be positive");
    let mut indeg = graph.pred_counts().to_vec();
    let mut ready: VecDeque<TaskId> = (0..graph.len()).filter(|&t| indeg[t] == 0).collect();
    // running: min-heap of (finish_time, task, worker)
    let mut running: BinaryHeap<Reverse<(OrdF64, TaskId, usize)>> = BinaryHeap::new();
    let mut free: VecDeque<usize> = (0..workers).collect();
    let mut busy = vec![0.0f64; workers];
    let mut now = 0.0f64;
    let mut done = 0usize;
    loop {
        while !ready.is_empty() && !free.is_empty() {
            let t = ready.pop_front().unwrap(); // lint: allow(unwrap): loop guard checked non-empty
            let w = free.pop_front().unwrap(); // lint: allow(unwrap): loop guard checked non-empty
            let dur = graph.cost(t) / speed;
            busy[w] += dur;
            running.push(Reverse((OrdF64(now + dur), t, w)));
        }
        match running.pop() {
            None => break,
            Some(Reverse((OrdF64(t_fin), t, w))) => {
                now = t_fin;
                free.push_back(w);
                done += 1;
                for &s in graph.succs(t) {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        ready.push_back(s);
                    }
                }
            }
        }
    }
    assert_eq!(done, graph.len(), "task graph has a cycle (deadlock)");
    SimResult {
        makespan: now,
        busy,
    }
}

/// [`simulate_dag_speed`] at unit speed.
pub fn simulate_dag(graph: &TaskGraph, workers: usize) -> SimResult {
    simulate_dag_speed(graph, workers, 1.0)
}

/// OMP loop-schedule policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OmpPolicy {
    /// `schedule(static)` — contiguous blocks, one per thread (or
    /// round-robin chunks when a chunk size is given).
    Static {
        /// Chunk size; `None` = one contiguous block per thread.
        chunk: Option<usize>,
    },
    /// `schedule(dynamic, chunk)` — free threads grab the next chunk.
    Dynamic {
        /// Chunk size (≥ 1).
        chunk: usize,
    },
    /// `schedule(guided, min_chunk)` — grab `max(remaining/threads,
    /// min_chunk)` iterations at a time.
    Guided {
        /// Minimum chunk size (≥ 1).
        min_chunk: usize,
    },
}

/// Simulate one `parallel for` over `costs` (cost of each iteration) with
/// `workers` threads under `policy`.
pub fn simulate_parallel_for(costs: &[f64], workers: usize, policy: OmpPolicy) -> SimResult {
    assert!(workers >= 1);
    let n = costs.len();
    let mut busy = vec![0.0f64; workers];
    match policy {
        OmpPolicy::Static { chunk } => {
            match chunk {
                None => {
                    // contiguous blocks of ⌈n/w⌉ then remainder, like GCC.
                    let block = n.div_ceil(workers.max(1)).max(1);
                    for (w, ch) in costs.chunks(block).enumerate() {
                        let w = w % workers;
                        busy[w] += ch.iter().sum::<f64>();
                    }
                }
                Some(c) => {
                    let c = c.max(1);
                    for (k, ch) in costs.chunks(c).enumerate() {
                        busy[k % workers] += ch.iter().sum::<f64>();
                    }
                }
            }
            let makespan = busy.iter().copied().fold(0.0, f64::max);
            SimResult { makespan, busy }
        }
        OmpPolicy::Dynamic { chunk } => {
            let c = chunk.max(1);
            simulate_grab(costs, workers, move |_remaining, _w| c)
        }
        OmpPolicy::Guided { min_chunk } => {
            let mc = min_chunk.max(1);
            let w = workers;
            simulate_grab(costs, workers, move |remaining, _| (remaining / w).max(mc))
        }
    }
}

/// Event-driven simulation where a freed worker grabs `chunk_fn(remaining)`
/// iterations from the shared index.
fn simulate_grab(
    costs: &[f64],
    workers: usize,
    chunk_fn: impl Fn(usize, usize) -> usize,
) -> SimResult {
    let n = costs.len();
    let mut next = 0usize;
    let mut busy = vec![0.0f64; workers];
    let mut heap: BinaryHeap<Reverse<(OrdF64, usize)>> =
        (0..workers).map(|w| Reverse((OrdF64(0.0), w))).collect();
    let mut makespan = 0.0f64;
    while next < n {
        let Reverse((OrdF64(t), w)) = heap.pop().unwrap(); // lint: allow(unwrap): heap holds one entry per worker
        let take = chunk_fn(n - next, w).min(n - next).max(1);
        let dur: f64 = costs[next..next + take].iter().sum();
        next += take;
        busy[w] += dur;
        makespan = makespan.max(t + dur);
        heap.push(Reverse((OrdF64(t + dur), w)));
    }
    SimResult { makespan, busy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskGraph;

    fn chain(costs: &[f64]) -> TaskGraph {
        let mut g = TaskGraph::new();
        let ids: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| g.add_task(c, format!("t{i}")))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g
    }

    fn independent(costs: &[f64]) -> TaskGraph {
        let mut g = TaskGraph::new();
        for (i, &c) in costs.iter().enumerate() {
            g.add_task(c, format!("t{i}"));
        }
        g
    }

    #[test]
    fn chain_gets_no_speedup() {
        let g = chain(&[1.0, 2.0, 3.0]);
        assert_eq!(simulate_dag(&g, 1).makespan, 6.0);
        assert_eq!(simulate_dag(&g, 4).makespan, 6.0);
    }

    #[test]
    fn independent_tasks_scale() {
        let g = independent(&[1.0; 8]);
        assert_eq!(simulate_dag(&g, 1).makespan, 8.0);
        assert_eq!(simulate_dag(&g, 4).makespan, 2.0);
        assert_eq!(simulate_dag(&g, 8).makespan, 1.0);
        assert_eq!(simulate_dag(&g, 16).makespan, 1.0);
    }

    #[test]
    fn graham_bound_holds() {
        // Random-ish diamond lattice.
        let mut g = TaskGraph::new();
        let mut prev: Vec<usize> = Vec::new();
        let mut idx = 0u64;
        for layer in 0..6 {
            let width = 1 + (layer * 7) % 5;
            let cur: Vec<usize> = (0..width)
                .map(|k| {
                    idx = idx
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(k as u64 + 1);
                    g.add_task(((idx >> 33) % 10) as f64 + 1.0, "t")
                })
                .collect();
            for &p in &prev {
                for &c in &cur {
                    g.add_edge(p, c);
                }
            }
            prev = cur;
        }
        for p in [1usize, 2, 3, 6] {
            let t = simulate_dag(&g, p).makespan;
            let bound = g.total_work() / p as f64 + (1.0 - 1.0 / p as f64) * g.critical_path();
            assert!(t <= bound + 1e-9, "P={p}: {t} > {bound}");
            assert!(t >= g.total_work() / p as f64 - 1e-9);
            assert!(t >= g.critical_path() - 1e-9);
        }
    }

    #[test]
    fn speed_scales_makespan() {
        let g = independent(&[2.0; 4]);
        let full = simulate_dag_speed(&g, 2, 1.0).makespan;
        let half = simulate_dag_speed(&g, 2, 0.5).makespan;
        assert!((half - 2.0 * full).abs() < 1e-12);
    }

    /// Triangular wavefront costs (decreasing) — the `BPMax` imbalance shape.
    fn triangle_costs(n: usize) -> Vec<f64> {
        (0..n).map(|i| (n - i) as f64).collect()
    }

    #[test]
    fn dynamic_beats_static_on_imbalanced_loop() {
        let costs = triangle_costs(64);
        let stat = simulate_parallel_for(&costs, 6, OmpPolicy::Static { chunk: None });
        let dyn_ = simulate_parallel_for(&costs, 6, OmpPolicy::Dynamic { chunk: 1 });
        assert!(
            dyn_.makespan < stat.makespan,
            "dynamic {} vs static {}",
            dyn_.makespan,
            stat.makespan
        );
        // static blocks: first thread gets the most expensive block
        assert!(stat.imbalance() > dyn_.imbalance());
    }

    #[test]
    fn guided_between_static_and_dynamic() {
        let costs = triangle_costs(96);
        let stat = simulate_parallel_for(&costs, 6, OmpPolicy::Static { chunk: None }).makespan;
        let guided = simulate_parallel_for(&costs, 6, OmpPolicy::Guided { min_chunk: 1 }).makespan;
        let dyn_ = simulate_parallel_for(&costs, 6, OmpPolicy::Dynamic { chunk: 1 }).makespan;
        assert!(dyn_ <= guided + 1e-9);
        assert!(guided <= stat + 1e-9);
    }

    #[test]
    fn static_round_robin_chunks_balance_better_than_blocks() {
        let costs = triangle_costs(60);
        let blocks = simulate_parallel_for(&costs, 4, OmpPolicy::Static { chunk: None }).makespan;
        let rr = simulate_parallel_for(&costs, 4, OmpPolicy::Static { chunk: Some(1) }).makespan;
        assert!(rr < blocks);
    }

    #[test]
    fn all_policies_do_all_work() {
        let costs = triangle_costs(33);
        let total: f64 = costs.iter().sum();
        for policy in [
            OmpPolicy::Static { chunk: None },
            OmpPolicy::Static { chunk: Some(4) },
            OmpPolicy::Dynamic { chunk: 2 },
            OmpPolicy::Guided { min_chunk: 2 },
        ] {
            let r = simulate_parallel_for(&costs, 5, policy);
            let done: f64 = r.busy.iter().sum();
            assert!((done - total).abs() < 1e-9, "{policy:?}");
            assert!(r.makespan >= total / 5.0 - 1e-9);
        }
    }

    #[test]
    fn utilization_and_imbalance_metrics() {
        let r = SimResult {
            makespan: 4.0,
            busy: vec![4.0, 2.0],
        };
        assert!((r.utilization() - 0.75).abs() < 1e-12);
        assert!((r.imbalance() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_loop() {
        let r = simulate_parallel_for(&[], 4, OmpPolicy::Dynamic { chunk: 1 });
        assert_eq!(r.makespan, 0.0);
    }
}
