//! Task-DAG parallel-execution simulation.
//!
//! The reproduction substitutes this simulator for the paper's 6-core /
//! 8-core Xeons (see DESIGN.md §3): the parallel *shape* of the `BPMax`
//! results — coarse vs fine vs hybrid ranking, load imbalance on triangular
//! wavefronts, why OMP `dynamic` scheduling wins, the small hyper-threading
//! gain of Fig 17 — is a property of the task graph, the per-task costs,
//! and the scheduling policy. We build exactly those task graphs (in the
//! `bpmax` crate) with per-task costs calibrated from measured kernel
//! times, and list-schedule them onto `P` simulated workers.
//!
//! * [`task`] — weighted task DAGs: construction, topological order, total
//!   work, critical path.
//! * [`sched`] — greedy list scheduling of DAGs (the OMP-`dynamic`
//!   analogue) plus OMP `static` / `dynamic` / `guided` policies for flat
//!   parallel-for loops.
//! * [`speedup`] — speedup curves and the hyper-threading efficiency model.
//! * [`distributed`] — an MPI-cluster model of the wavefront (the paper's
//!   future-work item), exposing the latency-bound vs compute-bound
//!   regimes of a distributed `BPMax`.
#![forbid(unsafe_code)]

pub mod distributed;
pub mod sched;
pub mod speedup;
pub mod task;

pub use sched::{simulate_dag, simulate_parallel_for, OmpPolicy, SimResult};
pub use speedup::{speedup_curve, HtModel};
pub use task::{TaskGraph, TaskId};
