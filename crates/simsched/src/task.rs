//! Weighted task DAGs.

/// Identifier of a task inside one [`TaskGraph`].
pub type TaskId = usize;

/// A directed acyclic graph of weighted tasks.
///
/// Edges point from prerequisite to dependent (`a → b` means `b` may start
/// only after `a` finishes). Costs are in arbitrary time units (the `BPMax`
/// DAG builders use calibrated seconds).
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    costs: Vec<f64>,
    labels: Vec<String>,
    succs: Vec<Vec<TaskId>>,
    pred_count: Vec<usize>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Add a task with the given cost; returns its id.
    pub fn add_task(&mut self, cost: f64, label: impl Into<String>) -> TaskId {
        assert!(
            cost >= 0.0 && cost.is_finite(),
            "task cost must be finite and >= 0"
        );
        let id = self.costs.len();
        self.costs.push(cost);
        self.labels.push(label.into());
        self.succs.push(Vec::new());
        self.pred_count.push(0);
        id
    }

    /// Add a dependency edge `from → to`.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) {
        assert!(
            from < self.costs.len() && to < self.costs.len(),
            "edge endpoint out of range"
        );
        assert_ne!(from, to, "self-edge");
        self.succs[from].push(to);
        self.pred_count[to] += 1;
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Cost of a task.
    pub fn cost(&self, id: TaskId) -> f64 {
        self.costs[id]
    }

    /// Label of a task.
    pub fn label(&self, id: TaskId) -> &str {
        &self.labels[id]
    }

    /// Successors of a task.
    pub fn succs(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id]
    }

    /// In-degree (number of prerequisites) of each task.
    pub fn pred_counts(&self) -> &[usize] {
        &self.pred_count
    }

    /// Total work: sum of all costs (the 1-thread makespan).
    pub fn total_work(&self) -> f64 {
        self.costs.iter().sum()
    }

    /// A topological order; `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<TaskId>> {
        let mut indeg = self.pred_count.clone();
        let mut queue: Vec<TaskId> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(t) = queue.pop() {
            order.push(t);
            for &s in &self.succs[t] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        (order.len() == self.len()).then_some(order)
    }

    /// Critical-path length (the ∞-thread makespan). Panics on cycles.
    pub fn critical_path(&self) -> f64 {
        let order = self.topo_order().expect("task graph has a cycle"); // lint: allow(expect): cycles panic by contract; topo_order is the fallible path
        let mut finish = vec![0.0f64; self.len()];
        for &t in &order {
            let start = finish[t]; // accumulated via predecessors below
            let f = start + self.costs[t];
            finish[t] = f;
            for &s in &self.succs[t] {
                if finish[s] < f {
                    finish[s] = f; // earliest start of s so far
                }
            }
        }
        finish.into_iter().fold(0.0, f64::max)
    }

    /// Average parallelism: work / critical path (∞ if the path is 0).
    pub fn parallelism(&self) -> f64 {
        let cp = self.critical_path();
        if cp == 0.0 {
            f64::INFINITY
        } else {
            self.total_work() / cp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: a → {b, c} → d with costs 1, 2, 3, 1.
    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task(1.0, "a");
        let b = g.add_task(2.0, "b");
        let c = g.add_task(3.0, "c");
        let d = g.add_task(1.0, "d");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn work_and_critical_path() {
        let g = diamond();
        assert_eq!(g.total_work(), 7.0);
        // a → c → d = 1 + 3 + 1
        assert_eq!(g.critical_path(), 5.0);
        assert!((g.parallelism() - 7.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order().unwrap();
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_task(1.0, "a");
        let b = g.add_task(1.0, "b");
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        assert_eq!(g.total_work(), 0.0);
        assert_eq!(g.critical_path(), 0.0);
        assert_eq!(g.topo_order().unwrap().len(), 0);
    }

    #[test]
    fn independent_tasks_have_singleton_critical_path() {
        let mut g = TaskGraph::new();
        for i in 0..5 {
            g.add_task(i as f64 + 1.0, format!("t{i}"));
        }
        assert_eq!(g.critical_path(), 5.0);
        assert_eq!(g.total_work(), 15.0);
    }

    #[test]
    #[should_panic(expected = "self-edge")]
    fn self_edge_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_task(1.0, "a");
        g.add_edge(a, a);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_cost_panics() {
        let mut g = TaskGraph::new();
        g.add_task(f64::NAN, "bad");
    }
}
