#!/usr/bin/env bash
# Regenerate every table and figure of the paper's evaluation section.
# Each artifact writes a human table to results/<name>.txt AND a
# structured telemetry report to results/json/<name>.json (see README.md
# "Benchmark telemetry & regression gate"); the final bench_aggregate
# step folds the reports into the repo-root BENCH_SUMMARY.json.
#
#   ./run_all_figures.sh           # fast configuration (~a few minutes)
#   ./run_all_figures.sh --full    # larger sizes, closer to the paper
set -euo pipefail
cd "$(dirname "$0")"

EXTRA="${1:-}"
OUT=results
mkdir -p "$OUT"

cargo build --release -p bench --bins

run() {
    local bin="$1"; shift
    echo "== $bin $* =="
    ./target/release/"$bin" "$@" --json-dir "$OUT/json" $EXTRA | tee "$OUT/$bin.txt"
    echo
}

run fig01_summary
run table01_dmp_schedules
run tables02_05_bpmax_schedules
run fig11_roofline
run fig12_microbench
run fig13_dmp_perf
run fig14_dmp_speedup
run fig15_bpmax_perf
run fig16_bpmax_speedup
run fig17_hyperthreading
run fig18_tile_sweep
run table06_codegen_loc
run ablation_locality
run ablation_sched_policy
run bench_batch_throughput
run bench_simd_kernel
run bench_serve
run bench_serve_load
run future_register_tiling
run future_mpi_cluster

echo "== bench_aggregate =="
./target/release/bench_aggregate --dir "$OUT/json" --out BENCH_SUMMARY.json

echo "all artifacts written to $OUT/ (telemetry in $OUT/json/, summary in BENCH_SUMMARY.json)"
