//! Offline stand-in for the `loom` concurrency model checker, covering
//! exactly the API subset this workspace's model tests use
//! (`loom::model`, `loom::thread::{spawn, yield_now}`,
//! `loom::sync::{Arc, Mutex}`, `loom::sync::atomic`).
//!
//! The build container has no network access, so the real crate cannot
//! be fetched. The real loom replaces `std` primitives with
//! instrumented versions and exhaustively enumerates interleavings via
//! bounded DPOR; this shim keeps the *test shape* — small closures over
//! shared state, re-run under [`model`] — but explores by **bounded
//! stress**: each model body runs [`DEFAULT_ITERS`] times (override
//! with `LOOM_ITERS`) on real OS threads, with the scheduler perturbed
//! by spin/yield jitter derived from the iteration index. That finds
//! real ordering bugs in the small state spaces these tests model
//! (two to three threads, a handful of atomic ops), though it proves
//! less than exhaustive checking would — swap in the real loom (the
//! API subset is source-compatible) for a full exploration.
//!
//! Determinism: the jitter schedule is a pure function of the iteration
//! index, so failures reproduce under the same `LOOM_ITERS`.

#![forbid(unsafe_code)]

/// Iterations each [`model`] body runs when `LOOM_ITERS` is unset.
pub const DEFAULT_ITERS: usize = 64;

/// Run `f` repeatedly, perturbing thread timing between iterations —
/// the shim's bounded-stress analogue of loom's exhaustive exploration.
///
/// Panics propagate out of the failing iteration, like the real loom.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ITERS);
    for i in 0..iters {
        // Perturb the scheduler a little differently each iteration so
        // spawned threads interleave at varying points.
        for _ in 0..(i % 7) {
            std::thread::yield_now();
        }
        f();
    }
}

pub mod thread {
    //! Real OS threads plus iteration-local jitter helpers.
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

pub mod sync {
    //! `std::sync` re-exports under loom's paths.
    pub use std::sync::{Arc, Mutex, MutexGuard};

    pub mod atomic {
        //! `std::sync::atomic` re-exports under loom's paths.
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}
