//! Offline stand-in for the `rayon` crate: the same API surface this
//! workspace uses (`par_iter`, `par_iter_mut`, `into_par_iter`,
//! `par_chunks_mut`, `ThreadPoolBuilder`/`install`), executed
//! sequentially on the calling thread.
//!
//! The build container has no network access and no vendored registry, so
//! the real crate cannot be fetched. Sequential execution is semantically
//! equivalent for all uses here (the workspace only relies on rayon for
//! speed, never for concurrency semantics), and the container exposes a
//! single core anyway, so there is no parallel speedup to lose.
//!
//! The "parallel" iterators are plain [`std::iter::Iterator`]s, so every
//! std combinator (`map`, `enumerate`, `for_each`, `sum`, ...) works
//! unchanged.

/// The traits rayon users import via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

/// By-value conversion into a "parallel" (here: sequential) iterator.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Convert into an iterator; sequential in this shim.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `.par_iter()` — shared-reference iteration.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared reference).
    type Item: 'a;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Iterate by shared reference; sequential in this shim.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// `.par_iter_mut()` — unique-reference iteration.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (a unique reference).
    type Item: 'a;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Iterate by unique reference; sequential in this shim.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Item = <&'a mut C as IntoIterator>::Item;
    type Iter = <&'a mut C as IntoIterator>::IntoIter;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// `.par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T> {
    /// Mutable chunks of at most `chunk_size`; sequential in this shim.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`; the built pool just runs
/// closures inline.
#[derive(Default, Debug)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the requested thread count (informational only here).
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the (inline-executing) pool. Never fails in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

/// Error type for [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Inline-executing stand-in for `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` on the calling thread and return its result.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    /// The configured thread count.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Number of threads the global pool would use (always 1 here).
#[must_use]
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 10);
        let doubled: Vec<i32> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![(0usize, 1i64), (1, 2)];
        v.par_iter_mut().for_each(|(_, x)| *x += 10);
        assert_eq!(v, vec![(0, 11), (1, 12)]);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = vec![0u8; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for b in chunk {
                *b = u8::try_from(i).unwrap();
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn pool_install_runs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert_eq!(pool.current_num_threads(), 4);
    }

    #[test]
    fn range_into_par_iter() {
        let total: usize = (0..5usize)
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| i + x)
            .sum();
        assert_eq!(total, 20);
    }
}
