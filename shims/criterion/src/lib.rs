//! Offline stand-in for the `criterion` crate: same bench-definition API
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, `black_box`), backed
//! by a tiny wall-clock harness instead of criterion's statistics engine.
//!
//! The build container has no network access and no vendored registry, so
//! the real crate cannot be fetched. This shim keeps the `[[bench]]`
//! targets compiling and runnable: each benchmark is warmed up once and
//! then timed for a bounded number of iterations (capped by a per-bench
//! time budget so `cargo bench` stays fast on the single-core container),
//! reporting mean ns/iter and derived element throughput.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget; keeps full `cargo bench` runs bounded.
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default, Debug)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group(name);
        group.bench_with_input(BenchmarkId::from_parameter("default"), &(), |b, ()| f(b));
        group.finish();
    }
}

/// Units for reporting throughput alongside time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of timed samples.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Attach a throughput figure to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        let ns_per_iter = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iters as f64
        };
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.3e} elem/s)", n as f64 * 1e9 / ns_per_iter.max(1.0))
            }
            Throughput::Bytes(n) => format!(" ({:.3e} B/s)", n as f64 * 1e9 / ns_per_iter.max(1.0)),
        });
        println!(
            "  {}/{}: {ns_per_iter:.0} ns/iter over {} iters{}",
            self.name,
            id.label,
            bencher.iters,
            rate.unwrap_or_default()
        );
        self
    }

    /// End the group (report separator; kept for API parity).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Passed to benchmark closures; times the routine handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`: one untimed warm-up, then up to `sample_size`
    /// timed iterations within the per-bench time budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Collect benchmark functions into a runner function, mirroring the
/// simple form of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` from runner functions, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_counts_iters() {
        benches();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
