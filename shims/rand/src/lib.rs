//! Offline stand-in for the `rand` crate, implementing exactly the 0.8 API
//! subset this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}`, `seq::SliceRandom::{shuffle, choose}`).
//!
//! The build container has no network access and no vendored registry, so
//! the real crate cannot be fetched; this shim keeps the workspace building
//! and testing offline. The generator is `SplitMix64` — deterministic, fast,
//! and statistically fine for test-data generation (the only use here).
//! Range sampling uses multiply-shift reduction; the tiny modulo bias is
//! irrelevant for tests and benches.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Map a 64-bit word to a uniform f64 in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic `SplitMix64` generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over half-open / inclusive intervals.
///
/// The single blanket `SampleRange` impl below (rather than one impl per
/// concrete range type) is what lets integer-literal inference work in
/// calls like `rng.gen_range(0..4)` used as a slice index.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let word = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + word as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let word = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + word as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle and element-choice operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element (`None` on an empty slice).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-8..8);
            assert!((-8..8).contains(&x));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(3i64..=5);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }
}
