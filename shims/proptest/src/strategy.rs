//! The [`Strategy`] trait and the combinator types this workspace uses
//! (`Just`, `prop_map`, boxed strategies, weighted unions, tuples).

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy that always yields a clone of one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy, produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Weighted choice among strategies sharing a value type; the expansion
/// target of `prop_oneof!`.
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Panics if no arm has
    /// positive weight.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one positive weight"
        );
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = ((u128::from(rng.next_u64()) * u128::from(self.total_weight)) >> 64) as u64;
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        self.arms.last().expect("non-empty union").1.generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F2);
}
