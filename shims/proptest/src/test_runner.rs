//! Test configuration and the deterministic RNG behind strategies.

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the suites quick on the
        // single-core CI container while still exercising variety.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic `SplitMix64` stream, seeded from the test name so each
/// test sees the same inputs on every run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash of the bytes).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    #[allow(clippy::cast_precision_loss)]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    #[allow(clippy::cast_possible_truncation)]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        let word = (u128::from(self.next_u64()) * span) >> 64;
        lo + word as usize
    }
}
