//! Offline stand-in for the `proptest` crate, implementing the API subset
//! this workspace's property tests use: the `proptest!` macro, range /
//! tuple / `Just` / `any` / `prop_oneof!` / `collection::vec` strategies,
//! `prop_map`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! The build container has no network access and no vendored registry, so
//! the real crate cannot be fetched. This shim keeps the property suites
//! runnable with the semantics that matter for CI: each test draws a
//! deterministic pseudo-random stream (seeded from the test name), runs
//! the body for `ProptestConfig::cases` iterations, and fails by panicking
//! with the offending values. There is no shrinking and no failure
//! persistence — a failing case prints its inputs instead.

use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRng};

/// Everything a test file needs from `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Strategy producing any value of `T` (uniform over the representation).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical "whole domain" strategy, for [`any`].
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Scalars whose `Range` / `RangeInclusive` act as uniform strategies.
///
/// A single generic `Strategy` impl per range type (rather than one per
/// scalar) keeps integer-literal inference working for untyped ranges.
pub trait RangeValue: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! int_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample_half_open(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let word = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + word as i128) as $t
            }
            fn sample_inclusive(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let word = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + word as i128) as $t
            }
        }
    )*};
}

int_range_value!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample_half_open(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
            fn sample_inclusive(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

float_range_value!(f32, f64);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a `vec` length specification.
    pub trait SizeRange {
        /// Inclusive `(lo, hi)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// `Vec` strategy with the given element strategy and length spec.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.lo, self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run `cases` iterations of a proptest body. Used by the `proptest!`
/// macro expansion; not intended for direct use.
pub fn run_cases(config: &ProptestConfig, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
    let mut rng = TestRng::from_name(test_name);
    for _ in 0..config.cases {
        body(&mut rng);
    }
}

/// The property-test entry macro. Expands each
/// `fn name(pat in strategy, ...) { body }` item into a zero-argument
/// test that runs the body for `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// `prop_assert!`: like `assert!` (no shrinking in this shim, so a plain
/// panic is the right failure mode).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!`: like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// `prop_assume!`: skip the current generated case when the assumption
/// does not hold. Expands to `continue` targeting the case loop that
/// `proptest!` wraps around the body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Weighted or unweighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( ($weight as u32, $crate::Strategy::boxed($strat)) ),+ ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (1u32, $crate::Strategy::boxed($strat)) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (i64, bool)> {
        ((-5i64..5), any::<bool>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn ranges_respect_bounds(x in 0i64..10, y in 1u8..=3) {
            prop_assert!((0..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(v in crate::collection::vec(0usize..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "bad len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn tuples_and_map((a, b) in pair(), s in (0i32..3).prop_map(|x| x * 2)) {
            prop_assert!((-5..5).contains(&a));
            let _ = b;
            prop_assert_eq!(s % 2, 0);
        }

        #[test]
        fn oneof_hits_both_arms(x in prop_oneof![3 => 0i64..10, 1 => Just(-99i64)]) {
            prop_assert!(x == -99 || (0..10).contains(&x));
        }

        #[test]
        fn assume_skips_cases(x in 0i64..10) {
            prop_assume!(x != 5);
            prop_assert_ne!(x, 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(0u64..1000, 5);
        let mut r1 = crate::TestRng::from_name("fixed");
        let mut r2 = crate::TestRng::from_name("fixed");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
